(* Legendre polynomials and the exact 1D coupling tables from which every
   volume and surface integral of the modal DG scheme factorizes.

   All modal basis functions (tensor, Serendipity and maximal-order families)
   are products of *normalized* Legendre polynomials
       P~_n(x) = sqrt((2n+1)/2) P_n(x),   int_{-1}^{1} P~_m P~_n dx = delta_mn,
   so the coupling tensors C_lmn of the paper reduce to products of the small
   1D tables computed here.  The 1D integrals are evaluated exactly (rational
   arithmetic times square-root normalizations), which is what makes the
   scheme alias-free: no quadrature approximation enters anywhere. *)

(* Exact Legendre P_n via the Bonnet recurrence
   (n+1) P_{n+1} = (2n+1) x P_n - n P_{n-1}. *)
let legendre : int -> Poly1.t =
  let cache = Hashtbl.create 16 in
  let rec p n =
    assert (n >= 0);
    match Hashtbl.find_opt cache n with
    | Some q -> q
    | None ->
        let q =
          if n = 0 then Poly1.one
          else if n = 1 then Poly1.x
          else
            let a = Rat.make (2 * n - 1) n and b = Rat.make (n - 1) n in
            Poly1.sub
              (Poly1.scale a (Poly1.mul Poly1.x (p (n - 1))))
              (Poly1.scale b (p (n - 2)))
        in
        Hashtbl.add cache n q;
        q
  in
  p

(* sqrt((2n+1)/2): normalization making the L2 norm on [-1,1] equal to 1. *)
let norm_factor n = sqrt (float_of_int (2 * n + 1) /. 2.0)

(* Normalized Legendre as an exact-coefficient polynomial times the float
   normalization; exposed as float coefficient array (lowest degree first). *)
let normalized_coeffs n =
  let p = legendre n in
  Array.init (n + 1) (fun k -> norm_factor n *. Rat.to_float (Poly1.coeff p k))

let eval_normalized n x = norm_factor n *. Poly1.eval_float (legendre n) x

(* P_n(1) = 1 and P_n(-1) = (-1)^n, hence: *)
let edge_value n ~side =
  assert (side = 1 || side = -1);
  if side = 1 then norm_factor n
  else if n land 1 = 0 then norm_factor n
  else -.norm_factor n

(* |P_n| <= 1 on [-1,1], so |P~_n| <= norm_factor n.  Used for penalty-speed
   bounds in Lax-Friedrichs fluxes. *)
let max_abs n = norm_factor n

(* --- Exact 1D coupling tables ----------------------------------------- *)

(* int_{-1}^{1} P~_a P~_b P~_c dx.  The rational part is exact; the three
   normalization square roots are applied in float. *)
let triple a b c =
  let r =
    Poly1.integrate_ref (Poly1.mul (legendre a) (Poly1.mul (legendre b) (legendre c)))
  in
  Rat.to_float r *. norm_factor a *. norm_factor b *. norm_factor c

(* int P~_a P~_b dP~_c/dx dx *)
let dtriple a b c =
  let r =
    Poly1.integrate_ref
      (Poly1.mul (legendre a) (Poly1.mul (legendre b) (Poly1.deriv (legendre c))))
  in
  Rat.to_float r *. norm_factor a *. norm_factor b *. norm_factor c

(* int x P~_a P~_b dx *)
let xpair a b =
  let r =
    Poly1.integrate_ref (Poly1.mul Poly1.x (Poly1.mul (legendre a) (legendre b)))
  in
  Rat.to_float r *. norm_factor a *. norm_factor b

(* int P~_a dP~_b/dx dx *)
let dpair a b =
  let r = Poly1.integrate_ref (Poly1.mul (legendre a) (Poly1.deriv (legendre b))) in
  Rat.to_float r *. norm_factor a *. norm_factor b

(* int x P~_a dP~_b/dx dx  (needed for the v-dependent part of streaming
   volume terms) *)
let xdpair a b =
  let r =
    Poly1.integrate_ref
      (Poly1.mul Poly1.x (Poly1.mul (legendre a) (Poly1.deriv (legendre b))))
  in
  Rat.to_float r *. norm_factor a *. norm_factor b

(* int P~_a P~_b P~_c P~_d dx: quadruple products arise in the acceleration
   surface terms when both the flux and the distribution carry expansions. *)
let quadruple a b c d =
  let r =
    Poly1.integrate_ref
      (Poly1.mul
         (Poly1.mul (legendre a) (legendre b))
         (Poly1.mul (legendre c) (legendre d)))
  in
  Rat.to_float r *. norm_factor a *. norm_factor b *. norm_factor c
  *. norm_factor d

(* int P~_a dP~_b/dx dP~_c/dx dx: arises in the (interior-penalty) DG
   discretization of the Fokker-Planck velocity diffusion. *)
let ddtriple a b c =
  let r =
    Poly1.integrate_ref
      (Poly1.mul (legendre a)
         (Poly1.mul (Poly1.deriv (legendre b)) (Poly1.deriv (legendre c))))
  in
  Rat.to_float r *. norm_factor a *. norm_factor b *. norm_factor c

(* int P~_a P~_b d^2 P~_c/dx^2 dx: the volume term of the twice-integrated
   recovery diffusion scheme. *)
let d2triple a b c =
  let r =
    Poly1.integrate_ref
      (Poly1.mul (legendre a)
         (Poly1.mul (legendre b) (Poly1.deriv (Poly1.deriv (legendre c)))))
  in
  Rat.to_float r *. norm_factor a *. norm_factor b *. norm_factor c

(* dP~_n/dx(+-1) *)
let dedge_value n ~side =
  assert (side = 1 || side = -1);
  norm_factor n *. Poly1.eval_float (Poly1.deriv (legendre n)) (float_of_int side)

(* Precomputed table bundle up to a maximum 1D degree. *)
type tables = {
  nmax : int;
  trip : float array array array; (* trip.(a).(b).(c) *)
  dtrip : float array array array;
  ddtrip : float array array array;
  d2trip : float array array array;
  xpair : float array array;
  dpair : float array array;
  xdpair : float array array;
  edge_lo : float array; (* P~_n(-1) *)
  edge_hi : float array; (* P~_n(+1) *)
  dedge_lo : float array; (* dP~_n/dx(-1) *)
  dedge_hi : float array;
  maxv : float array;
}

let make_tables nmax =
  let t3 f =
    Array.init (nmax + 1) (fun a ->
        Array.init (nmax + 1) (fun b -> Array.init (nmax + 1) (fun c -> f a b c)))
  in
  let t2 f =
    Array.init (nmax + 1) (fun a -> Array.init (nmax + 1) (fun b -> f a b))
  in
  {
    nmax;
    trip = t3 triple;
    dtrip = t3 dtriple;
    ddtrip = t3 ddtriple;
    d2trip = t3 d2triple;
    xpair = t2 xpair;
    dpair = t2 dpair;
    xdpair = t2 xdpair;
    edge_lo = Array.init (nmax + 1) (fun n -> edge_value n ~side:(-1));
    edge_hi = Array.init (nmax + 1) (fun n -> edge_value n ~side:1);
    dedge_lo = Array.init (nmax + 1) (fun n -> dedge_value n ~side:(-1));
    dedge_hi = Array.init (nmax + 1) (fun n -> dedge_value n ~side:1);
    maxv = Array.init (nmax + 1) max_abs;
  }

(* Tables are cheap to build but used everywhere; share one per nmax. *)
let tables : int -> tables =
  let cache = Hashtbl.create 4 in
  fun nmax ->
    match Hashtbl.find_opt cache nmax with
    | Some t -> t
    | None ->
        let t = make_tables nmax in
        Hashtbl.add cache nmax t;
        t
