(** Exact rational arithmetic over native integers.

    Every multiplication and addition is overflow-checked ({!Overflow} is
    raised rather than wrapping silently), which is ample for the
    Legendre-polynomial coefficients the CAS layer manipulates. *)

exception Overflow

type t

val make : int -> int -> t
(** [make num den] is the normalized rational [num/den].
    @raise Invalid_argument on a zero denominator. *)

val of_int : int -> t
val zero : t
val one : t

val num : t -> int
(** Numerator of the normalized form (denominator always positive). *)

val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t

val inv : t -> t
(** @raise Invalid_argument on zero. *)

val div : t -> t -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val is_zero : t -> bool
val sign : t -> int
val to_float : t -> float
val pp : Format.formatter -> t -> unit
val to_string : t -> string
