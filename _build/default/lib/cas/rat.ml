(* Exact rational arithmetic over native integers with overflow detection.

   The computer-algebra layer only ever manipulates Legendre-polynomial
   coefficients and their products/integrals for modest degrees (n <= 8), so
   native 63-bit integers are ample — but every multiplication is checked so
   silent wraparound is impossible. *)

exception Overflow

type t = { num : int; den : int } (* den > 0, gcd (|num|, den) = 1 *)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let checked_mul a b =
  if a = 0 || b = 0 then 0
  else
    let p = a * b in
    if p / b <> a then raise Overflow else p

let checked_add a b =
  let s = a + b in
  (* Overflow iff operands share a sign and the sum's sign differs. *)
  if (a >= 0 && b >= 0 && s < 0) || (a < 0 && b < 0 && s >= 0) then
    raise Overflow
  else s

let make num den =
  if den = 0 then invalid_arg "Rat.make: zero denominator";
  let s = if den < 0 then -1 else 1 in
  let num = s * num and den = s * den in
  let g = gcd num den in
  if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let num r = r.num
let den r = r.den

let add a b =
  let g = gcd a.den b.den in
  let da = a.den / g and db = b.den / g in
  make
    (checked_add (checked_mul a.num db) (checked_mul b.num da))
    (checked_mul a.den db)

let neg a = { a with num = -a.num }
let sub a b = add a (neg b)

let mul a b =
  (* Cross-reduce before multiplying to keep intermediates small. *)
  let g1 = gcd a.num b.den and g2 = gcd b.num a.den in
  let g1 = max g1 1 and g2 = max g2 1 in
  make
    (checked_mul (a.num / g1) (b.num / g2))
    (checked_mul (a.den / g2) (b.den / g1))

let inv a =
  if a.num = 0 then invalid_arg "Rat.inv: zero";
  make a.den a.num

let div a b = mul a (inv b)
let equal a b = a.num = b.num && a.den = b.den
let compare a b = compare (a.num * b.den) (b.num * a.den)
let is_zero a = a.num = 0
let sign a = compare a zero
let to_float a = float_of_int a.num /. float_of_int a.den
let pp ppf a =
  if a.den = 1 then Fmt.pf ppf "%d" a.num else Fmt.pf ppf "%d/%d" a.num a.den
let to_string a = Fmt.str "%a" pp a
