(* Univariate polynomials with exact rational coefficients.

   Represented densely as an array of coefficients, lowest degree first,
   normalized so the leading coefficient is non-zero (or the array is empty
   for the zero polynomial). *)

type t = Rat.t array

let normalize (c : Rat.t array) : t =
  let n = ref (Array.length c) in
  while !n > 0 && Rat.is_zero c.(!n - 1) do
    decr n
  done;
  Array.sub c 0 !n

let zero : t = [||]
let is_zero (p : t) = Array.length p = 0
let const r : t = normalize [| r |]
let one = const Rat.one
let x : t = [| Rat.zero; Rat.one |]
let of_coeffs l : t = normalize (Array.of_list l)
let degree (p : t) = Array.length p - 1 (* -1 for the zero polynomial *)

let coeff (p : t) k =
  if k < Array.length p then p.(k) else Rat.zero

let add (p : t) (q : t) : t =
  let n = max (Array.length p) (Array.length q) in
  normalize (Array.init n (fun i -> Rat.add (coeff p i) (coeff q i)))

let neg (p : t) : t = Array.map Rat.neg p
let sub p q = add p (neg q)
let scale r (p : t) : t = if Rat.is_zero r then zero else normalize (Array.map (Rat.mul r) p)

let mul (p : t) (q : t) : t =
  if is_zero p || is_zero q then zero
  else begin
    let n = Array.length p + Array.length q - 1 in
    let c = Array.make n Rat.zero in
    Array.iteri
      (fun i pi ->
        Array.iteri (fun j qj -> c.(i + j) <- Rat.add c.(i + j) (Rat.mul pi qj)) q)
      p;
    normalize c
  end

let equal (p : t) (q : t) = is_zero (sub p q)

(* d/dx *)
let deriv (p : t) : t =
  if Array.length p <= 1 then zero
  else
    normalize
      (Array.init (Array.length p - 1) (fun i ->
           Rat.mul (Rat.of_int (i + 1)) p.(i + 1)))

(* Antiderivative with zero constant term. *)
let antideriv (p : t) : t =
  if is_zero p then zero
  else
    normalize
      (Array.init
         (Array.length p + 1)
         (fun i -> if i = 0 then Rat.zero else Rat.div p.(i - 1) (Rat.of_int i)))

let eval (p : t) (v : Rat.t) : Rat.t =
  Array.fold_right (fun c acc -> Rat.add c (Rat.mul v acc)) p Rat.zero

let eval_float (p : t) (v : float) : float =
  Array.fold_right (fun c acc -> Rat.to_float c +. (v *. acc)) p 0.0

(* Exact definite integral over [a, b]. *)
let integrate (p : t) ~(a : Rat.t) ~(b : Rat.t) : Rat.t =
  let f = antideriv p in
  Rat.sub (eval f b) (eval f a)

(* Integral over the reference interval [-1, 1]. *)
let integrate_ref (p : t) : Rat.t =
  integrate p ~a:(Rat.of_int (-1)) ~b:Rat.one

let pp ppf (p : t) =
  if is_zero p then Fmt.string ppf "0"
  else begin
    let first = ref true in
    Array.iteri
      (fun i c ->
        if not (Rat.is_zero c) then begin
          if not !first then Fmt.string ppf " + ";
          first := false;
          if i = 0 then Rat.pp ppf c else Fmt.pf ppf "%a*x^%d" Rat.pp c i
        end)
      p
  end

let to_string p = Fmt.str "%a" pp p
