(** Univariate polynomials with exact rational coefficients.

    The symbolic backbone of the quadrature-free scheme: Legendre
    polynomials, their products and their definite integrals are all
    computed here without any floating-point error. *)

type t

val zero : t
val one : t

val x : t
(** The identity polynomial. *)

val const : Rat.t -> t

val of_coeffs : Rat.t list -> t
(** Coefficients lowest degree first. *)

val is_zero : t -> bool

val degree : t -> int
(** [-1] for the zero polynomial. *)

val coeff : t -> int -> Rat.t
(** Coefficient of degree [k] (zero beyond the degree). *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : Rat.t -> t -> t
val mul : t -> t -> t
val equal : t -> t -> bool

val deriv : t -> t
(** d/dx. *)

val antideriv : t -> t
(** Antiderivative with zero constant term. *)

val eval : t -> Rat.t -> Rat.t
val eval_float : t -> float -> float

val integrate : t -> a:Rat.t -> b:Rat.t -> Rat.t
(** Exact definite integral over [a, b]. *)

val integrate_ref : t -> Rat.t
(** Exact integral over the reference interval [-1, 1]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
