(** Gauss-Legendre quadrature.

    The modal scheme is quadrature-free; quadrature serves only the
    alias-free *nodal* baseline, projection of non-polynomial initial
    data, and tests that verify the symbolic kernels. *)

val gauss_legendre : int -> float array * float array
(** [gauss_legendre n] is [(nodes, weights)] of the n-point rule on
    [-1, 1], exact for polynomials of degree 2n-1. *)

val tensor : dim:int -> n:int -> float array array * float array
(** Tensor-product rule over [-1,1]^dim with [n] points per dimension:
    [(points, weights)], the last dimension fastest. *)

val integrate : dim:int -> n:int -> (float array -> float) -> float
