(* Distribution-function slices: 2D cuts through phase space evaluated on a
   uniform point raster, written as CSV — the data behind figures like the
   paper's Fig. 5 (f in the y-v_y and v_x-v_y planes). *)

module Grid = Dg_grid.Grid
module Field = Dg_grid.Field
module Modal = Dg_basis.Modal

(* Evaluate the expansion of [fld] at an arbitrary physical point. *)
let eval_at (basis : Modal.t) (fld : Field.t) (point : float array) =
  let g = Field.grid fld in
  let ndim = Grid.ndim g in
  let c = Array.make ndim 0 in
  let xi = Array.make ndim 0.0 in
  let lower = Grid.lower g and dx = Grid.dx g and cells = Grid.cells g in
  for d = 0 to ndim - 1 do
    let s = (point.(d) -. lower.(d)) /. dx.(d) in
    let cd = int_of_float (Float.floor s) in
    let cd = max 0 (min (cells.(d) - 1) cd) in
    c.(d) <- cd;
    xi.(d) <- (2.0 *. (s -. float_of_int cd)) -. 1.0
  done;
  let block = Array.make (Field.ncomp fld) 0.0 in
  Field.read_block fld c block;
  Modal.eval_expansion basis block xi

(* Write a 2D slice: dimensions [dim_x], [dim_y] of phase space are rastered
   with [nx] x [ny] points, all other coordinates fixed at [at].  CSV rows:
   x, y, f. *)
let write_slice_2d ~(basis : Modal.t) ~(fld : Field.t) ~dim_x ~dim_y
    ~(at : float array) ~nx ~ny path =
  let g = Field.grid fld in
  let lower = Grid.lower g and upper = Grid.upper g in
  let oc = open_out path in
  Printf.fprintf oc "# dims %d %d\nx,y,f\n" dim_x dim_y;
  let point = Array.copy at in
  for i = 0 to nx - 1 do
    let x =
      lower.(dim_x)
      +. ((float_of_int i +. 0.5) /. float_of_int nx *. (upper.(dim_x) -. lower.(dim_x)))
    in
    for j = 0 to ny - 1 do
      let y =
        lower.(dim_y)
        +. ((float_of_int j +. 0.5) /. float_of_int ny
           *. (upper.(dim_y) -. lower.(dim_y)))
      in
      point.(dim_x) <- x;
      point.(dim_y) <- y;
      Printf.fprintf oc "%.8g,%.8g,%.8g\n" x y (eval_at basis fld point)
    done
  done;
  close_out oc

(* Write a simple columnar CSV. *)
let write_csv ~header ~(rows : float array list) path =
  let oc = open_out path in
  Printf.fprintf oc "%s\n" (String.concat "," header);
  List.iter
    (fun row ->
      Array.iteri
        (fun i v ->
          if i > 0 then output_char oc ',';
          Printf.fprintf oc "%.12g" v)
        row;
      output_char oc '\n')
    rows;
  close_out oc
