(** Distribution-function slices: 2D cuts through phase space rastered to
    CSV — the data behind figures like the paper's Fig. 5. *)

module Field = Dg_grid.Field
module Modal = Dg_basis.Modal

val eval_at : Modal.t -> Field.t -> float array -> float
(** Evaluate the DG expansion at an arbitrary physical point (clamped to
    the domain). *)

val write_slice_2d :
  basis:Modal.t ->
  fld:Field.t ->
  dim_x:int ->
  dim_y:int ->
  at:float array ->
  nx:int ->
  ny:int ->
  string ->
  unit
(** Raster dimensions [dim_x], [dim_y] with all other coordinates fixed at
    [at]; writes CSV rows [x,y,f]. *)

val write_csv : header:string list -> rows:float array list -> string -> unit
