(* Checkpoint / restart of coefficient fields (the role ADIOS plays in
   Gkeyll): a minimal self-describing binary format storing the grid shape,
   component count and the raw coefficient array. *)

module Grid = Dg_grid.Grid
module Field = Dg_grid.Field

let magic = 0x56444721 (* "VDG!" *)

let write_float oc v =
  let b = Int64.bits_of_float v in
  for i = 7 downto 0 do
    output_byte oc (Int64.to_int (Int64.shift_right_logical b (8 * i)) land 0xff)
  done

let write_field path (f : Field.t) =
  let oc = open_out_bin path in
  let g = Field.grid f in
  output_binary_int oc magic;
  output_binary_int oc (Grid.ndim g);
  Array.iter (output_binary_int oc) (Grid.cells g);
  output_binary_int oc (Field.ncomp f);
  output_binary_int oc (Field.nghost f);
  Array.iter (write_float oc) (Grid.lower g);
  Array.iter (write_float oc) (Grid.upper g);
  Array.iter (write_float oc) (Field.data f);
  close_out oc

let read_float ic =
  let b = ref 0L in
  for _ = 0 to 7 do
    b := Int64.logor (Int64.shift_left !b 8) (Int64.of_int (input_byte ic))
  done;
  Int64.float_of_bits !b

let read_field path : Field.t =
  let ic = open_in_bin path in
  let m = input_binary_int ic in
  if m <> magic then failwith "Snapshot.read_field: bad magic";
  let ndim = input_binary_int ic in
  let cells = Array.init ndim (fun _ -> input_binary_int ic) in
  let ncomp = input_binary_int ic in
  let nghost = input_binary_int ic in
  let lower = Array.init ndim (fun _ -> read_float ic) in
  let upper = Array.init ndim (fun _ -> read_float ic) in
  let grid = Grid.make ~cells ~lower ~upper in
  let f = Field.create ~nghost grid ~ncomp in
  let d = Field.data f in
  for i = 0 to Array.length d - 1 do
    d.(i) <- read_float ic
  done;
  close_in ic;
  f
