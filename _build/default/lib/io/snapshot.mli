(** Checkpoint / restart of coefficient fields (the role ADIOS plays for
    Gkeyll): a minimal self-describing binary format. *)

val write_field : string -> Dg_grid.Field.t -> unit

val read_field : string -> Dg_grid.Field.t
(** @raise Failure on a malformed file. *)
