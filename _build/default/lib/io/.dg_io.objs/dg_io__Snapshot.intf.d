lib/io/snapshot.mli: Dg_grid
