lib/io/slices.mli: Dg_basis Dg_grid
