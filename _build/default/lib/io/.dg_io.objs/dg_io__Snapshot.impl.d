lib/io/snapshot.ml: Array Dg_grid Int64
