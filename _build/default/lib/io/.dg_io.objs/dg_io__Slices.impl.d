lib/io/slices.ml: Array Dg_basis Dg_grid Float List Printf String
