(* Generation of unrolled, matrix-free OCaml kernels from the sparse
   coupling tensors — the analogue of the paper's Maxima-generated C++
   kernels (Fig. 1).  The emitted code is straight-line: all loops unrolled,
   all tensor entries folded to double-precision literals, terms grouped by
   output coefficient so the compiler can schedule the dense instruction
   stream (the paper's ILP discussion).

   Two flavours:
   - [emit_t3_apply]: unrolls a generic 3-tensor application
       out.(l) <- out.(l) + scale * sum_entries c * alpha.(m) * f.(n)
   - [emit_streaming_volume]: the specialized Fig.-1-style kernel for the
     collisionless streaming volume term, where the two-coefficient flux
     expansion is folded in so the kernel takes only the cell geometry
     (velocity-cell center [wv] and width [dv]) and the distribution
     coefficients. *)

module Layout = Dg_kernels.Layout
module Tensors = Dg_kernels.Tensors
module Sparse = Dg_kernels.Sparse
module Flux = Dg_kernels.Flux

let lit v =
  (* full-precision literal that round-trips and stays a float literal *)
  let s = Printf.sprintf "%.17g" v in
  let s =
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'n') s then s
    else s ^ "."
  in
  "(" ^ s ^ ")"

(* Group tensor entries by output row l. *)
let rows_of_t3 (t : Sparse.t3) =
  let tbl = Hashtbl.create 64 in
  Array.iteri
    (fun e c ->
      let l = t.Sparse.li.(e) in
      let prev = Option.value ~default:[] (Hashtbl.find_opt tbl l) in
      Hashtbl.replace tbl l ((t.Sparse.mi.(e), t.Sparse.ni.(e), c) :: prev))
    t.Sparse.cv;
  List.sort compare (Hashtbl.fold (fun l terms acc -> (l, List.rev terms) :: acc) tbl [])

(* Generic unrolled t3 application: one function, straight-line adds. *)
let emit_t3_apply ~name (t : Sparse.t3) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "let %s ~scale (alpha : float array) (f : float array) (out : float \
        array) =\n"
       name);
  let rows = rows_of_t3 t in
  if rows = [] then Buffer.add_string buf "  ignore scale; ignore alpha; ignore f; ignore out\n"
  else
    List.iter
      (fun (l, terms) ->
        Buffer.add_string buf (Printf.sprintf "  out.(%d) <- out.(%d) +. scale *. (" l l);
        List.iteri
          (fun i (m, n, c) ->
            if i > 0 then Buffer.add_string buf " +. ";
            Buffer.add_string buf
              (Printf.sprintf "%s *. alpha.(%d) *. f.(%d)" (lit c) m n))
          terms;
        Buffer.add_string buf ");\n")
      rows;
  Buffer.add_string buf "  ()\n";
  Buffer.contents buf

(* Multiplications in the generic unrolled form: 2 per term (c*alpha, *f)
   plus one scale multiply per output row. *)
let mult_count_t3 (t : Sparse.t3) =
  let rows = rows_of_t3 t in
  List.fold_left (fun acc (_, terms) -> acc + 1 + (2 * List.length terms)) 0 rows

(* Specialized streaming-volume kernel (cf. paper Fig. 1).  The flux
   v = wv + (dv/2) xi has exactly two expansion coefficients
     a0 = wv * c0,   a1 = (dv/2) * c1
   so each output row becomes  out_l += rdx2 * (A_l * wv + B_l * dv)
   with A_l, B_l literal dot products of f — the same "pull out common
   factors" structure the CAS applies in Gkeyll. *)
let emit_streaming_volume (lay : Layout.t) ~dir ~name =
  let support = Tensors.streaming_support lay ~dir in
  let vol = Tensors.volume lay.Layout.basis ~support ~dir in
  let pdim = lay.Layout.pdim in
  let c0 = Flux.const_coeff ~dim:pdim in
  let c1 = 0.5 *. Flux.linear_coeff ~dim:pdim in
  let const_idx = support.(0) and lin_idx = support.(1) in
  (* split rows into the wv-proportional and dv-proportional parts *)
  let rows = rows_of_t3 vol in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "(* volume streaming kernel, %dX%dV %s p=%d, direction %d: out += \
        rdx2 * int w_n v d(w_l)/dxi  (auto-generated) *)\n"
       lay.Layout.cdim lay.Layout.vdim
       (Dg_basis.Modal.family_name (Dg_basis.Modal.family lay.Layout.basis))
       (Dg_basis.Modal.poly_order lay.Layout.basis)
       dir);
  Buffer.add_string buf
    (Printf.sprintf
       "let %s ~(wv : float) ~(dv : float) ~(rdx2 : float) (f : float array) \
        (out : float array) =\n"
       name);
  let mults = ref 0 in
  List.iter
    (fun (l, terms) ->
      let wv_terms = List.filter (fun (m, _, _) -> m = const_idx) terms in
      let dv_terms = List.filter (fun (m, _, _) -> m = lin_idx) terms in
      let dot buf coeff items =
        List.iteri
          (fun i (_, n, c) ->
            if i > 0 then Buffer.add_string buf " +. ";
            Buffer.add_string buf (Printf.sprintf "%s *. f.(%d)" (lit (c *. coeff)) n);
            incr mults)
          items
      in
      Buffer.add_string buf (Printf.sprintf "  out.(%d) <- out.(%d) +. rdx2 *. (" l l);
      let has_wv = wv_terms <> [] and has_dv = dv_terms <> [] in
      if has_wv then begin
        Buffer.add_string buf "(wv *. (";
        dot buf c0 wv_terms;
        Buffer.add_string buf "))";
        incr mults
      end;
      if has_dv then begin
        if has_wv then Buffer.add_string buf " +. ";
        Buffer.add_string buf "(dv *. (";
        dot buf c1 dv_terms;
        Buffer.add_string buf "))";
        incr mults
      end;
      if (not has_wv) && not has_dv then Buffer.add_string buf "0.0";
      Buffer.add_string buf ");\n";
      incr mults (* rdx2 *))
    rows;
  Buffer.add_string buf "  ()\n";
  (Buffer.contents buf, !mults)

(* Estimated multiplications for the equivalent alias-free *nodal*
   quadrature update of the same volume term: interpolation of f to the
   quadrature points (nq*np), pointwise flux multiply (nq), and the
   weighted-derivative scatter back (np*nq) — the O(N_q N_p) cost the paper
   quotes (~250 vs ~70 for 1X2V p=1). *)
let nodal_mult_estimate (lay : Layout.t) =
  let p = Dg_basis.Modal.poly_order lay.Layout.basis in
  let pdim = lay.Layout.pdim in
  let np = Dg_util.Combi.pow_int (p + 1) pdim in
  let nq1 = Dg_basis.Nodal_basis.alias_free_quad_points ~poly_order:p in
  let nq = Dg_util.Combi.pow_int nq1 pdim in
  (* one interpolation, then per phase-space direction a pointwise flux
     multiply and a weighted-derivative scatter — the hidden dimensionality
     factor of the quadrature update *)
  (nq * np) + (pdim * (nq + (np * nq)))

(* Wrap emitted items in a module with a header. *)
let emit_module ~header items =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf ("(* " ^ header ^ "\n   DO NOT EDIT: generated by bin/kernel_gen. *)\n\n");
  List.iter
    (fun src ->
      Buffer.add_string buf src;
      Buffer.add_char buf '\n')
    items;
  Buffer.contents buf
