lib/codegen/codegen.mli: Dg_kernels
