lib/codegen/codegen.ml: Array Buffer Dg_basis Dg_kernels Dg_util Hashtbl List Option Printf String
