(* LU decomposition with partial pivoting, for the small dense solves
   (mass-matrix inversion in the nodal baseline, Vandermonde systems,
   collision-operator primitive-moment solves). *)

type t = { n : int; lu : Mat.t; piv : int array }

exception Singular

let decompose (a : Mat.t) =
  assert (Mat.rows a = Mat.cols a);
  let n = Mat.rows a in
  let lu = Mat.copy a in
  let piv = Array.init n Fun.id in
  for k = 0 to n - 1 do
    (* pivot search *)
    let pmax = ref (Float.abs (Mat.get lu k k)) and prow = ref k in
    for i = k + 1 to n - 1 do
      let v = Float.abs (Mat.get lu i k) in
      if v > !pmax then begin
        pmax := v;
        prow := i
      end
    done;
    if !pmax = 0.0 then raise Singular;
    if !prow <> k then begin
      for j = 0 to n - 1 do
        let t = Mat.get lu k j in
        Mat.set lu k j (Mat.get lu !prow j);
        Mat.set lu !prow j t
      done;
      let t = piv.(k) in
      piv.(k) <- piv.(!prow);
      piv.(!prow) <- t
    end;
    let akk = Mat.get lu k k in
    for i = k + 1 to n - 1 do
      let lik = Mat.get lu i k /. akk in
      Mat.set lu i k lik;
      for j = k + 1 to n - 1 do
        Mat.set lu i j (Mat.get lu i j -. (lik *. Mat.get lu k j))
      done
    done
  done;
  { n; lu; piv }

let solve_vec t (b : float array) : float array =
  assert (Array.length b = t.n);
  let x = Array.init t.n (fun i -> b.(t.piv.(i))) in
  (* forward substitution (unit lower) *)
  for i = 1 to t.n - 1 do
    for j = 0 to i - 1 do
      x.(i) <- x.(i) -. (Mat.get t.lu i j *. x.(j))
    done
  done;
  (* back substitution *)
  for i = t.n - 1 downto 0 do
    for j = i + 1 to t.n - 1 do
      x.(i) <- x.(i) -. (Mat.get t.lu i j *. x.(j))
    done;
    x.(i) <- x.(i) /. Mat.get t.lu i i
  done;
  x

let solve (a : Mat.t) b = solve_vec (decompose a) b

let inverse (a : Mat.t) =
  let t = decompose a in
  let n = t.n in
  let inv = Mat.create n n in
  for j = 0 to n - 1 do
    let e = Array.make n 0.0 in
    e.(j) <- 1.0;
    let col = solve_vec t e in
    for i = 0 to n - 1 do
      Mat.set inv i j col.(i)
    done
  done;
  inv

let determinant (a : Mat.t) =
  try
    let t = decompose a in
    let d = ref 1.0 in
    for i = 0 to t.n - 1 do
      d := !d *. Mat.get t.lu i i
    done;
    (* sign of the permutation *)
    let seen = Array.make t.n false in
    let sign = ref 1 in
    for i = 0 to t.n - 1 do
      if not seen.(i) then begin
        let len = ref 0 and j = ref i in
        while not seen.(!j) do
          seen.(!j) <- true;
          j := t.piv.(!j);
          incr len
        done;
        if !len land 1 = 0 then sign := - !sign
      end
    done;
    float_of_int !sign *. !d
  with Singular -> 0.0
