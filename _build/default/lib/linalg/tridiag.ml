(* Tridiagonal (Thomas) and cyclic-tridiagonal solvers, used by the finite
   Poisson solves (Dirichlet/Neumann sheath boundary conditions). *)

(* Solve a_i x_{i-1} + b_i x_i + c_i x_{i+1} = d_i with a_0 = c_{n-1} = 0. *)
let solve ~(a : float array) ~(b : float array) ~(c : float array)
    ~(d : float array) =
  let n = Array.length b in
  assert (Array.length a = n && Array.length c = n && Array.length d = n);
  let cp = Array.make n 0.0 and dp = Array.make n 0.0 in
  cp.(0) <- c.(0) /. b.(0);
  dp.(0) <- d.(0) /. b.(0);
  for i = 1 to n - 1 do
    let m = b.(i) -. (a.(i) *. cp.(i - 1)) in
    cp.(i) <- c.(i) /. m;
    dp.(i) <- (d.(i) -. (a.(i) *. dp.(i - 1))) /. m
  done;
  let x = Array.make n 0.0 in
  x.(n - 1) <- dp.(n - 1);
  for i = n - 2 downto 0 do
    x.(i) <- dp.(i) -. (cp.(i) *. x.(i + 1))
  done;
  x

(* Periodic (cyclic) tridiagonal via the Sherman-Morrison trick. *)
let solve_cyclic ~(a : float array) ~(b : float array) ~(c : float array)
    ~(d : float array) =
  let n = Array.length b in
  assert (n >= 3);
  let gamma = -.b.(0) in
  let b' = Array.copy b in
  b'.(0) <- b.(0) -. gamma;
  b'.(n - 1) <- b.(n - 1) -. (a.(0) *. c.(n - 1) /. gamma);
  let a' = Array.copy a and c' = Array.copy c in
  a'.(0) <- 0.0;
  c'.(n - 1) <- 0.0;
  let x = solve ~a:a' ~b:b' ~c:c' ~d in
  let u = Array.make n 0.0 in
  u.(0) <- gamma;
  u.(n - 1) <- c.(n - 1);
  let z = solve ~a:a' ~b:b' ~c:c' ~d:u in
  let fact =
    (x.(0) +. (a.(0) *. x.(n - 1) /. gamma))
    /. (1.0 +. z.(0) +. (a.(0) *. z.(n - 1) /. gamma))
  in
  Array.init n (fun i -> x.(i) -. (fact *. z.(i)))
