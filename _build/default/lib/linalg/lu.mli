(** LU decomposition with partial pivoting, for the small dense solves
    (nodal mass matrices, Vandermonde systems, weak division). *)

exception Singular

type t

val decompose : Mat.t -> t
(** @raise Singular on an exactly singular matrix. *)

val solve_vec : t -> float array -> float array
val solve : Mat.t -> float array -> float array
val inverse : Mat.t -> Mat.t

val determinant : Mat.t -> float
(** 0 for singular matrices. *)
