(** Tridiagonal (Thomas) and cyclic-tridiagonal solvers (bounded Poisson
    problems, sheath boundary conditions). *)

val solve :
  a:float array -> b:float array -> c:float array -> d:float array ->
  float array
(** Solve a_i x_{i-1} + b_i x_i + c_i x_{i+1} = d_i with
    a_0 = c_{n-1} = 0. *)

val solve_cyclic :
  a:float array -> b:float array -> c:float array -> d:float array ->
  float array
(** Periodic variant (Sherman-Morrison); needs n >= 3. *)
