(* Dense row-major matrices.

   This is the linear-algebra substrate for the *nodal* baseline (dense
   interpolation/derivative operators, the analogue of the paper's use of
   Eigen) and for small solves elsewhere (mass matrices, Vandermonde
   inversions).  The modal scheme itself never touches a matrix. *)

type t = { rows : int; cols : int; a : float array }

let create rows cols = { rows; cols; a = Array.make (rows * cols) 0.0 }

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.a.((i * cols) + j) <- f i j
    done
  done;
  m

let rows m = m.rows
let cols m = m.cols
let get m i j = m.a.((i * m.cols) + j)
let set m i j v = m.a.((i * m.cols) + j) <- v
let copy m = { m with a = Array.copy m.a }

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let transpose m = init m.cols m.rows (fun i j -> get m j i)

(* y := A x  (the hot operation of the nodal baseline). *)
let matvec m (x : float array) (y : float array) =
  assert (Array.length x = m.cols && Array.length y = m.rows);
  let a = m.a and cols = m.cols in
  for i = 0 to m.rows - 1 do
    let base = i * cols in
    let acc = ref 0.0 in
    for j = 0 to cols - 1 do
      acc := !acc +. (Array.unsafe_get a (base + j) *. Array.unsafe_get x j)
    done;
    y.(i) <- !acc
  done

(* y := y + s * A x *)
let matvec_acc m ?(scale = 1.0) (x : float array) (y : float array) =
  assert (Array.length x = m.cols && Array.length y = m.rows);
  let a = m.a and cols = m.cols in
  for i = 0 to m.rows - 1 do
    let base = i * cols in
    let acc = ref 0.0 in
    for j = 0 to cols - 1 do
      acc := !acc +. (Array.unsafe_get a (base + j) *. Array.unsafe_get x j)
    done;
    y.(i) <- y.(i) +. (scale *. !acc)
  done

let matmul p q =
  assert (p.cols = q.rows);
  let r = create p.rows q.cols in
  for i = 0 to p.rows - 1 do
    for k = 0 to p.cols - 1 do
      let pik = get p i k in
      if pik <> 0.0 then
        for j = 0 to q.cols - 1 do
          r.a.((i * r.cols) + j) <- r.a.((i * r.cols) + j) +. (pik *. get q k j)
        done
    done
  done;
  r

let scale s m = { m with a = Array.map (fun v -> s *. v) m.a }

let add p q =
  assert (p.rows = q.rows && p.cols = q.cols);
  { p with a = Array.mapi (fun i v -> v +. q.a.(i)) p.a }

(* Count of non-zero entries (sparsity diagnostics for the paper's C_lmn). *)
let nnz ?(tol = 0.0) m =
  Array.fold_left (fun acc v -> if Float.abs v > tol then acc + 1 else acc) 0 m.a

let pp ppf m =
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      Fmt.pf ppf "%12.5g " (get m i j)
    done;
    Fmt.pf ppf "@\n"
  done
