(** Dense row-major matrices: the linear-algebra substrate of the *nodal*
    baseline (the analogue of the paper's use of Eigen) and of small
    solves elsewhere.  The modal scheme itself never touches a matrix. *)

type t

val create : int -> int -> t
val init : int -> int -> (int -> int -> float) -> t
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val copy : t -> t
val identity : int -> t
val transpose : t -> t

val matvec : t -> float array -> float array -> unit
(** [matvec a x y]: y := A x (the hot operation of the nodal baseline). *)

val matvec_acc : t -> ?scale:float -> float array -> float array -> unit
(** y := y + scale * A x. *)

val matmul : t -> t -> t
val scale : float -> t -> t
val add : t -> t -> t

val nnz : ?tol:float -> t -> int
(** Non-zero entry count (sparsity diagnostics). *)

val pp : Format.formatter -> t -> unit
