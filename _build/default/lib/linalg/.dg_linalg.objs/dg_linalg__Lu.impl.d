lib/linalg/lu.ml: Array Float Fun Mat
