lib/linalg/tridiag.ml: Array
