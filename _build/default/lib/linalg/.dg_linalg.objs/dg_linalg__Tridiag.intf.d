lib/linalg/tridiag.mli:
