lib/linalg/mat.ml: Array Float Fmt
