lib/collisions/prim_moments.ml: Array Dg_basis Dg_grid Dg_kernels Dg_linalg Dg_moments
