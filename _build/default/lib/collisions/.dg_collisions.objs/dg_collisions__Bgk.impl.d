lib/collisions/bgk.ml: Array Dg_basis Dg_grid Dg_kernels Dg_moments Float Prim_moments
