lib/collisions/prim_moments.mli: Dg_grid Dg_kernels Dg_moments
