lib/collisions/lbo.ml: Array Dg_basis Dg_cas Dg_grid Dg_kernels Dg_moments Dg_util Float Option Prim_moments
