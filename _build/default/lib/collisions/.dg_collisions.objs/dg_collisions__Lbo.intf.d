lib/collisions/lbo.mli: Dg_grid Dg_kernels
