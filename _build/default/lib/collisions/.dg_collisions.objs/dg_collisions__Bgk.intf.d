lib/collisions/bgk.mli: Dg_grid Dg_kernels Dg_moments Prim_moments
