(** Primitive moments (flow u, squared thermal speed vth^2) by *weak*
    operations on configuration-space expansions: weak multiplication is
    the exact projection of a product; weak division inverts it through a
    small per-cell linear solve (the approach of Gkeyll's collision
    infrastructure, Hakim et al. 2020). *)

module Layout = Dg_kernels.Layout
module Field = Dg_grid.Field

type t

val make : Layout.t -> t

val weak_mul : t -> float array -> float array -> float array -> unit
(** [weak_mul t f g out]: out = projection of f*g onto the config basis. *)

val weak_div : t -> float array -> float array -> float array
(** [weak_div t g r] solves (g *weak* out) = r for [out]. *)

type prim = {
  u : Field.t;  (** flow velocity, vdim blocks of nc coefficients *)
  vth2 : Field.t;
  m0 : Field.t;
}

val alloc_prim : t -> prim

val compute : t -> moments:Dg_moments.Moments.t -> f:Field.t -> prim:prim -> unit
(** u = M1/M0 and vth^2 = (M2 - u.M1)/(vdim M0), cellwise. *)
