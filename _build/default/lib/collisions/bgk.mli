(** BGK collision operator C[f] = nu (f_M[n,u,vth] - f), with the target
    Maxwellian built from the weak primitive moments and projected by
    Gauss quadrature (the one knowingly quadrature-based operator, as in
    Gkeyll). *)

module Layout = Dg_kernels.Layout
module Field = Dg_grid.Field

type t = {
  lay : Layout.t;
  nu : float;
  nc : int;
  np : int;
  prim : Prim_moments.t;
  moments : Dg_moments.Moments.t;
  prim_state : Prim_moments.prim;
}

val create : nu:float -> Layout.t -> t
val update_prim : t -> f:Field.t -> unit

val maxwellian :
  vdim:int -> n:float -> u:float array -> vth2:float -> float array -> float
(** Pointwise Maxwellian; returns 0 for non-positive density/temperature. *)

val rhs : t -> f:Field.t -> out:Field.t -> unit
(** Accumulate nu (f_M - f) into [out]. *)
