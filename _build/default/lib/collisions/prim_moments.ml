(* Primitive moments (flow velocity u, squared thermal speed vth^2) computed
   from the raw velocity moments M0, M1, M2 by *weak* operations on the
   configuration-space expansions: weak multiplication is the exact L2
   projection of a product, and weak division inverts it by solving the
   small per-cell linear system sum_b A_ab u_b = r_a with
   A_ab = sum_c T_abc g_c — the approach used by Gkeyll's collision
   infrastructure (Hakim et al. 2020, [22] of the paper). *)

module Layout = Dg_kernels.Layout
module Tensors = Dg_kernels.Tensors
module Sparse = Dg_kernels.Sparse
module Modal = Dg_basis.Modal
module Grid = Dg_grid.Grid
module Field = Dg_grid.Field
module Mat = Dg_linalg.Mat
module Lu = Dg_linalg.Lu
module Moments = Dg_moments.Moments

type t = {
  lay : Layout.t;
  nc : int;
  triple : Sparse.t3; (* T_abc over the config basis *)
}

let make (lay : Layout.t) =
  {
    lay;
    nc = Layout.num_cbasis lay;
    triple = Tensors.mass_triple lay.Layout.cbasis;
  }

(* out_a = sum_{b,c} T_abc f_b g_c : the exact projection of f*g. *)
let weak_mul t (f : float array) (g : float array) (out : float array) =
  Array.fill out 0 t.nc 0.0;
  Sparse.apply_t3 t.triple ~scale:1.0 f g out

(* Solve (g *weak* out) = r for out: out = r / g in the weak sense. *)
let weak_div t (g : float array) (r : float array) : float array =
  let a = Mat.create t.nc t.nc in
  let tt = t.triple in
  for e = 0 to Array.length tt.Sparse.cv - 1 do
    let l = tt.Sparse.li.(e) and m = tt.Sparse.mi.(e) and n = tt.Sparse.ni.(e) in
    (* row l, unknown coefficient index m, known g at n *)
    Mat.set a l m (Mat.get a l m +. (tt.Sparse.cv.(e) *. g.(n)))
  done;
  Lu.solve a r

type prim = {
  u : Field.t; (* flow velocity, vdim blocks of nc coefficients *)
  vth2 : Field.t; (* squared thermal speed, nc coefficients *)
  m0 : Field.t;
}

let alloc_prim t =
  {
    u = Field.create t.lay.Layout.cgrid ~ncomp:(t.lay.Layout.vdim * t.nc);
    vth2 = Field.create t.lay.Layout.cgrid ~ncomp:t.nc;
    m0 = Field.create t.lay.Layout.cgrid ~ncomp:t.nc;
  }

(* Compute u = M1/M0 and vth^2 = (M2 - u.M1) / (vdim M0) cellwise. *)
let compute t ~(moments : Moments.t) ~(f : Field.t) ~(prim : prim) =
  let lay = t.lay in
  let nc = t.nc in
  let vdim = lay.Layout.vdim in
  let m1 = Field.create lay.Layout.cgrid ~ncomp:(3 * nc) in
  let m2 = Field.create lay.Layout.cgrid ~ncomp:nc in
  Field.fill prim.m0 0.0;
  Moments.m0 moments ~f ~out:prim.m0;
  Moments.accumulate_current moments ~charge:1.0 ~f ~out:m1;
  Moments.m2 moments ~f ~out:m2;
  let m0b = Array.make nc 0.0 in
  let m1b = Array.make (3 * nc) 0.0 in
  let m2b = Array.make nc 0.0 in
  let ub = Array.make nc 0.0 in
  let tmp = Array.make nc 0.0 in
  Grid.iter_cells lay.Layout.cgrid (fun _ c ->
      Field.read_block prim.m0 c m0b;
      Field.read_block m1 c m1b;
      Field.read_block m2 c m2b;
      (* u_k = M1_k / M0, and accumulate u . M1 into m2b (negated) *)
      for k = 0 to vdim - 1 do
        let m1k = Array.sub m1b (k * nc) nc in
        let uk = weak_div t m0b m1k in
        Array.blit uk 0 ub 0 nc;
        Field.data prim.u
        |> fun d -> Array.blit ub 0 d (Field.offset prim.u c + (k * nc)) nc;
        weak_mul t ub m1k tmp;
        for a = 0 to nc - 1 do
          m2b.(a) <- m2b.(a) -. tmp.(a)
        done
      done;
      (* vth^2 = (M2 - u.M1) / (vdim M0) *)
      let denom = Array.map (fun v -> float_of_int vdim *. v) m0b in
      let vt2 = weak_div t denom m2b in
      Array.blit vt2 0 (Field.data prim.vth2) (Field.offset prim.vth2 c) nc)
