(* Generates the unrolled OCaml kernels under lib/genkernels/ — the
   counterpart of Gkeyll's Maxima-generated C++ kernel tree (paper Fig. 1).
   Run from the repository root:

     dune exec bin/kernel_gen.exe

   and rebuild; the generated module is compiled into dg_genkernels and
   cross-checked against the interpreted sparse tensors by the test suite. *)

module Layout = Dg_kernels.Layout
module Modal = Dg_basis.Modal
module Grid = Dg_grid.Grid
module Codegen = Dg_codegen.Codegen
module Tensors = Dg_kernels.Tensors

let layout ~cdim ~vdim ~family ~p =
  let pdim = cdim + vdim in
  let grid =
    Grid.make ~cells:(Array.make pdim 2)
      ~lower:(Array.make pdim (-1.0))
      ~upper:(Array.make pdim 1.0)
  in
  Layout.make ~cdim ~vdim ~family ~poly_order:p ~grid

let () =
  let configs =
    [
      (1, 1, Modal.Tensor, 1, "1x1v_p1_tensor");
      (1, 1, Modal.Tensor, 2, "1x1v_p2_tensor");
      (1, 2, Modal.Tensor, 1, "1x2v_p1_tensor");
      (1, 2, Modal.Serendipity, 2, "1x2v_p2_ser");
    ]
  in
  let items = ref [] in
  let index = ref [] in
  List.iter
    (fun (cdim, vdim, family, p, tag) ->
      let lay = layout ~cdim ~vdim ~family ~p in
      (* specialized streaming volume kernel for direction 0 *)
      let src, mults =
        Codegen.emit_streaming_volume lay ~dir:0
          ~name:(Printf.sprintf "vol_stream_%s" tag)
      in
      items := src :: !items;
      index := Printf.sprintf "   vol_stream_%s: %d multiplications" tag mults :: !index;
      (* generic unrolled acceleration volume kernel for the first velocity
         direction *)
      let dir = cdim in
      let support = Tensors.acceleration_support lay ~vdir:dir in
      let vol = Tensors.volume lay.Layout.basis ~support ~dir in
      let src =
        Codegen.emit_t3_apply ~name:(Printf.sprintf "vol_accel_%s" tag) vol
      in
      items := src :: !items;
      index :=
        Printf.sprintf "   vol_accel_%s: %d multiplications" tag
          (Codegen.mult_count_t3 vol)
        :: !index)
    configs;
  let header =
    "Auto-generated unrolled modal DG kernels (paper Fig. 1 analogue).\n"
    ^ String.concat "\n" (List.rev !index)
  in
  let out = Codegen.emit_module ~header (List.rev !items) in
  let path = "lib/genkernels/kernels.ml" in
  (try Unix.mkdir "lib/genkernels" 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let oc = open_out path in
  output_string oc out;
  close_out oc;
  let dune_path = "lib/genkernels/dune" in
  if not (Sys.file_exists dune_path) then begin
    let oc = open_out dune_path in
    output_string oc "(library\n (name dg_genkernels))\n";
    close_out oc
  end;
  Printf.printf "wrote %s\n%s\n" path header
