(* The nodal baseline and the modal scheme discretize the same polynomial
   space when the modal basis is Tensor; with the same (central) numerical
   flux and exact/over-integrated quadrature both are alias-free, so their
   right-hand sides must agree to rounding error through the Vandermonde map
   f_nodal = V f_modal.  This pins down both solvers against each other. *)

module Layout = Dg_kernels.Layout
module Modal = Dg_basis.Modal
module Grid = Dg_grid.Grid
module Field = Dg_grid.Field
module Mat = Dg_linalg.Mat
module Nodal = Dg_nodal.Nodal_solver
module Solver = Dg_vlasov.Solver

let make_lay ~cdim ~vdim ~p =
  let pdim = cdim + vdim in
  let cells = Array.init pdim (fun d -> if d < cdim then 3 else 4) in
  let lower = Array.init pdim (fun d -> if d < cdim then 0.0 else -2.0) in
  let upper = Array.init pdim (fun d -> if d < cdim then 6.28 else 2.0) in
  let grid = Grid.make ~cells ~lower ~upper in
  Layout.make ~cdim ~vdim ~family:Modal.Tensor ~poly_order:p ~grid

let phase_bcs (lay : Layout.t) =
  Array.init lay.Layout.pdim (fun d ->
      if d < lay.Layout.cdim then (Field.Periodic, Field.Periodic)
      else (Field.Zero, Field.Zero))

let nodal_equiv ~cdim ~vdim ~p ~with_em () =
  let lay = make_lay ~cdim ~vdim ~p in
  let np_modal = Layout.num_basis lay in
  let qm = -1.25 in
  let modal = Solver.create ~flux:Solver.Central ~qm lay in
  let nodal = Nodal.create ~flux:Nodal.Central ~qm lay in
  let v = Nodal.vandermonde nodal in
  let np_nodal = Nodal.num_nodes nodal in
  Alcotest.(check int) "same space dimension" np_modal np_nodal;
  (* random modal state; map to nodal *)
  let rng = Random.State.make [| 21 |] in
  let fm = Field.create lay.Layout.grid ~ncomp:np_modal in
  let fn = Field.create lay.Layout.grid ~ncomp:np_nodal in
  let mb = Array.make np_modal 0.0 and nb = Array.make np_nodal 0.0 in
  Grid.iter_cells lay.Layout.grid (fun _ c ->
      for k = 0 to np_modal - 1 do
        mb.(k) <- Random.State.float rng 2.0 -. 1.0
      done;
      Field.write_block fm c mb;
      Mat.matvec v mb nb;
      Field.write_block fn c nb);
  let bcs = phase_bcs lay in
  Field.sync_ghosts fm bcs;
  Field.sync_ghosts fn bcs;
  let em =
    if with_em then begin
      let nc = Layout.num_cbasis lay in
      let e = Field.create lay.Layout.cgrid ~ncomp:(8 * nc) in
      Grid.iter_cells lay.Layout.cgrid (fun _ c ->
          for k = 0 to (6 * nc) - 1 do
            Field.set e c k (Random.State.float rng 2.0 -. 1.0)
          done);
      Field.sync_ghosts e (Array.make cdim (Field.Periodic, Field.Periodic));
      Some e
    end
    else None
  in
  let om = Field.create lay.Layout.grid ~ncomp:np_modal in
  let on = Field.create lay.Layout.grid ~ncomp:np_nodal in
  Solver.rhs modal ~f:fm ~em ~out:om;
  Nodal.rhs nodal ~f:fn ~em ~out:on;
  (* compare V * rhs_modal with rhs_nodal cellwise *)
  let maxdiff = ref 0.0 and scale = ref 0.0 in
  let ob = Array.make np_modal 0.0 and vb = Array.make np_nodal 0.0 in
  let nbk = Array.make np_nodal 0.0 in
  Grid.iter_cells lay.Layout.grid (fun _ c ->
      Field.read_block om c ob;
      Mat.matvec v ob vb;
      Field.read_block on c nbk;
      for k = 0 to np_nodal - 1 do
        maxdiff := Float.max !maxdiff (Float.abs (vb.(k) -. nbk.(k)));
        scale := Float.max !scale (Float.abs vb.(k))
      done);
  if !maxdiff > 1e-9 *. Float.max 1.0 !scale then
    Alcotest.failf "nodal <> modal: maxdiff %.3e (scale %.3e)" !maxdiff !scale

let test_equiv_streaming_1x1v () = nodal_equiv ~cdim:1 ~vdim:1 ~p:2 ~with_em:false ()
let test_equiv_em_1x1v () = nodal_equiv ~cdim:1 ~vdim:1 ~p:1 ~with_em:true ()
let test_equiv_em_1x2v () = nodal_equiv ~cdim:1 ~vdim:2 ~p:1 ~with_em:true ()
let test_equiv_em_1x1v_p2 () = nodal_equiv ~cdim:1 ~vdim:1 ~p:2 ~with_em:true ()

(* Nodal current matches the modal moment computation through V. *)
let test_current_equivalence () =
  let lay = make_lay ~cdim:1 ~vdim:2 ~p:2 in
  let np = Layout.num_basis lay in
  let nodal = Nodal.create ~flux:Nodal.Central ~qm:1.0 lay in
  let v = Nodal.vandermonde nodal in
  let rng = Random.State.make [| 33 |] in
  let fm = Field.create lay.Layout.grid ~ncomp:np in
  let fn = Field.create lay.Layout.grid ~ncomp:np in
  let mb = Array.make np 0.0 and nb = Array.make np 0.0 in
  Grid.iter_cells lay.Layout.grid (fun _ c ->
      for k = 0 to np - 1 do
        mb.(k) <- Random.State.float rng 2.0 -. 1.0
      done;
      Field.write_block fm c mb;
      Mat.matvec v mb nb;
      Field.write_block fn c nb);
  let nc = Layout.num_cbasis lay in
  let jm = Field.create lay.Layout.cgrid ~ncomp:(3 * nc) in
  let jn = Field.create lay.Layout.cgrid ~ncomp:(3 * nc) in
  let mom = Dg_moments.Moments.make lay in
  let charge = -2.0 in
  Dg_moments.Moments.accumulate_current mom ~charge ~f:fm ~out:jm;
  Nodal.accumulate_current nodal ~charge ~f:fn ~out:jn;
  Grid.iter_cells lay.Layout.cgrid (fun _ c ->
      for k = 0 to (3 * nc) - 1 do
        let a = Field.get jm c k and b = Field.get jn c k in
        if not (Dg_util.Float_cmp.close ~rtol:1e-9 ~atol:1e-9 a b) then
          Alcotest.failf "current mismatch k=%d: %.12g <> %.12g" k a b
      done)

let () =
  Alcotest.run "dg_nodal"
    [
      ( "equivalence",
        [
          Alcotest.test_case "streaming 1x1v p=2" `Quick test_equiv_streaming_1x1v;
          Alcotest.test_case "vlasov-maxwell 1x1v p=1" `Quick test_equiv_em_1x1v;
          Alcotest.test_case "vlasov-maxwell 1x2v p=1" `Quick test_equiv_em_1x2v;
          Alcotest.test_case "vlasov-maxwell 1x1v p=2" `Quick test_equiv_em_1x1v_p2;
          Alcotest.test_case "current moment" `Quick test_current_equivalence;
        ] );
    ]
