(* Solver-level tests of the modal Vlasov update: conservation laws and the
   discrete field-particle energy-exchange identity (paper Eq. 9), which
   holds only because every integral is evaluated exactly (alias-free). *)

module Layout = Dg_kernels.Layout
module Modal = Dg_basis.Modal
module Grid = Dg_grid.Grid
module Field = Dg_grid.Field
module Solver = Dg_vlasov.Solver
module Moments = Dg_moments.Moments

let check_close ?(tol = 1e-10) msg a b =
  if not (Dg_util.Float_cmp.close ~rtol:tol ~atol:tol a b) then
    Alcotest.failf "%s: %.17g <> %.17g" msg a b

let make_lay ~cdim ~vdim ~family ~p ~cells_c ~cells_v ~vmax =
  let pdim = cdim + vdim in
  let cells =
    Array.init pdim (fun d -> if d < cdim then cells_c else cells_v)
  in
  let lower = Array.init pdim (fun d -> if d < cdim then 0.0 else -.vmax) in
  let upper =
    Array.init pdim (fun d -> if d < cdim then 2.0 *. Float.pi else vmax)
  in
  let grid = Grid.make ~cells ~lower ~upper in
  Layout.make ~cdim ~vdim ~family ~poly_order:p ~grid

let phase_bcs (lay : Layout.t) =
  Array.init lay.Layout.pdim (fun d ->
      if d < lay.Layout.cdim then (Field.Periodic, Field.Periodic)
      else (Field.Zero, Field.Zero))

(* Random distribution supported away from the velocity boundary (so the
   zero-flux velocity BC introduces no boundary terms). *)
let random_f ?(seed = 5) (lay : Layout.t) =
  let rng = Random.State.make [| seed |] in
  let np = Layout.num_basis lay in
  let f = Field.create lay.Layout.grid ~ncomp:np in
  let interior = ref true in
  Grid.iter_cells lay.Layout.grid (fun _ c ->
      interior := true;
      for d = lay.Layout.cdim to lay.Layout.pdim - 1 do
        let n = (Grid.cells lay.Layout.grid).(d) in
        if c.(d) = 0 || c.(d) = n - 1 then interior := false
      done;
      if !interior then
        for k = 0 to np - 1 do
          Field.set f c k (Random.State.float rng 2.0 -. 1.0)
        done);
  f

let random_em ?(seed = 9) (lay : Layout.t) =
  let rng = Random.State.make [| seed |] in
  let nc = Layout.num_cbasis lay in
  let em = Field.create lay.Layout.cgrid ~ncomp:(8 * nc) in
  Grid.iter_cells lay.Layout.cgrid (fun _ c ->
      for k = 0 to (6 * nc) - 1 do
        Field.set em c k (Random.State.float rng 2.0 -. 1.0)
      done);
  em

(* A spatially uniform distribution is an exact steady state of streaming
   (no fields): rhs must vanish identically. *)
let test_uniform_steady () =
  let lay = make_lay ~cdim:1 ~vdim:1 ~family:Modal.Serendipity ~p:2 ~cells_c:4
      ~cells_v:6 ~vmax:3.0 in
  let np = Layout.num_basis lay in
  let solver = Solver.create ~flux:Solver.Upwind ~qm:1.0 lay in
  let f = Field.create lay.Layout.grid ~ncomp:np in
  (* f varying in v only: coefficients on velocity-only modes *)
  Dg_app.Vm_app.project_phase lay
    ~f:(fun ~pos:_ ~vel -> exp (-.(vel.(0) *. vel.(0))))
    f;
  Field.sync_ghosts f (phase_bcs lay);
  let out = Field.create lay.Layout.grid ~ncomp:np in
  Solver.rhs solver ~f ~em:None ~out;
  Grid.iter_cells lay.Layout.grid (fun _ c ->
      for k = 0 to np - 1 do
        let v = Field.get out c k in
        if Float.abs v > 1e-11 then
          Alcotest.failf "rhs not zero: %a k=%d v=%g"
            (Fmt.array ~sep:Fmt.comma Fmt.int) c k v
      done)

(* Particle number is conserved: int (df/dt) dz = 0 to machine precision,
   for both flux choices, with and without fields. *)
let test_mass_conservation () =
  List.iter
    (fun (flux, with_em, cdim, vdim, family, p) ->
      let lay = make_lay ~cdim ~vdim ~family ~p ~cells_c:4 ~cells_v:4 ~vmax:2.0 in
      let np = Layout.num_basis lay in
      let solver = Solver.create ~flux ~qm:(-1.5) lay in
      let f = random_f lay in
      Field.sync_ghosts f (phase_bcs lay);
      let em = if with_em then Some (random_em lay) else None in
      (match em with
      | Some e ->
          Field.sync_ghosts e
            (Array.make lay.Layout.cdim (Field.Periodic, Field.Periodic))
      | None -> ());
      let out = Field.create lay.Layout.grid ~ncomp:np in
      Solver.rhs solver ~f ~em ~out;
      let mom = Moments.make lay in
      let dmass = Moments.total_mass mom ~f:out in
      let scale = Moments.total_mass mom ~f in
      check_close ~tol:1e-9
        (Printf.sprintf "d(mass)/dt = 0 (em=%b)" with_em)
        0.0
        (dmass /. Float.max 1.0 (Float.abs scale)))
    [
      (Solver.Central, false, 1, 1, Modal.Serendipity, 2);
      (Solver.Upwind, false, 1, 1, Modal.Serendipity, 2);
      (Solver.Central, true, 1, 1, Modal.Tensor, 2);
      (Solver.Upwind, true, 1, 2, Modal.Serendipity, 1);
      (Solver.Upwind, true, 2, 2, Modal.Serendipity, 1);
    ]

(* The discrete energy-exchange identity, Eq. 9 of the paper:
     d/dt int (m |v|^2 / 2) f_h dz = int J_h . E_h dx
   for central fluxes and p >= 2.  This is the property aliasing errors
   destroy; it must hold to machine precision here. *)
let test_energy_exchange_identity () =
  List.iter
    (fun (cdim, vdim, family) ->
      let lay =
        make_lay ~cdim ~vdim ~family ~p:2 ~cells_c:3 ~cells_v:6 ~vmax:2.5
      in
      let np = Layout.num_basis lay in
      let mass = 2.5 and charge = -1.5 in
      let solver = Solver.create ~flux:Solver.Central ~qm:(charge /. mass) lay in
      let f = random_f lay in
      Field.sync_ghosts f (phase_bcs lay);
      let em = random_em lay in
      Field.sync_ghosts em
        (Array.make lay.Layout.cdim (Field.Periodic, Field.Periodic));
      let out = Field.create lay.Layout.grid ~ncomp:np in
      Solver.rhs solver ~f ~em:(Some em) ~out;
      let mom = Moments.make lay in
      (* LHS: (m/2) int |v|^2 (df/dt) dz *)
      let ke_dot = Moments.total_kinetic_energy mom ~mass ~f:out in
      (* RHS: int J . E dx with J = q M1 *)
      let nc = Layout.num_cbasis lay in
      let j = Field.create lay.Layout.cgrid ~ncomp:(3 * nc) in
      Moments.accumulate_current mom ~charge ~f ~out:j;
      let jac =
        Grid.cell_volume lay.Layout.cgrid /. (2.0 ** float_of_int cdim)
      in
      let je = ref 0.0 in
      Grid.iter_cells lay.Layout.cgrid (fun _ c ->
          let jb = Field.offset j c and eb = Field.offset em c in
          for comp = 0 to min 2 (lay.Layout.vdim - 1) do
            for k = 0 to nc - 1 do
              je :=
                !je
                +. (Field.data j).(jb + (comp * nc) + k)
                   *. (Field.data em).(eb + (comp * nc) + k)
            done
          done);
      let je = !je *. jac in
      check_close ~tol:1e-9
        (Printf.sprintf "dKE/dt = J.E (%dx%dv %s)" cdim vdim
           (Modal.family_name family))
        je ke_dot)
    [ (1, 1, Modal.Tensor); (1, 2, Modal.Serendipity); (2, 2, Modal.Serendipity) ]

(* Free-streaming advection of a smooth profile: compare against the exact
   solution f0(x - v t, v) after a short time; the error must converge at
   high order with resolution. *)
let advection_error ~cells_c ~p =
  (* refine both dimensions so the velocity-space projection error also
     shrinks, and keep the Gaussian negligible at the velocity boundary *)
  let lay =
    make_lay ~cdim:1 ~vdim:1 ~family:Modal.Tensor ~p ~cells_c ~cells_v:cells_c
      ~vmax:3.0
  in
  let np = Layout.num_basis lay in
  let solver = Solver.create ~flux:Solver.Upwind ~qm:0.0 lay in
  let f0 ~pos ~vel = (1.0 +. (0.5 *. sin pos.(0))) *. exp (-2.0 *. vel.(0) *. vel.(0)) in
  let f = Field.create lay.Layout.grid ~ncomp:np in
  Dg_app.Vm_app.project_phase lay ~f:f0 f;
  let stepper = Dg_time.Stepper.create ~scheme:Dg_time.Stepper.Ssp_rk3 ~like:[ f ] in
  let bcs = phase_bcs lay in
  let rhs ~time:_ state outs =
    match (state, outs) with
    | [ fs ], [ os ] ->
        Field.sync_ghosts fs bcs;
        Solver.rhs solver ~f:fs ~em:None ~out:os
    | _ -> assert false
  in
  let tend = 0.5 in
  let dt = 0.2 /. float_of_int cells_c in
  let nsteps = int_of_float (Float.ceil (tend /. dt)) in
  let dt = tend /. float_of_int nsteps in
  for i = 0 to nsteps - 1 do
    Dg_time.Stepper.step stepper ~rhs ~time:(float_of_int i *. dt) ~dt [ f ]
  done;
  (* L2 error against the exact solution via quadrature *)
  let exact ~pos ~vel = f0 ~pos:[| pos.(0) -. (vel.(0) *. tend) |] ~vel in
  let err = ref 0.0 in
  let phys = Array.make 2 0.0 in
  let basis = lay.Layout.basis in
  let pts, wts = Dg_cas.Quadrature.tensor ~dim:2 ~n:(p + 2) in
  let jac = Grid.cell_volume lay.Layout.grid /. 4.0 in
  let block = Array.make np 0.0 in
  Grid.iter_cells lay.Layout.grid (fun _ c ->
      Field.read_block f c block;
      Array.iteri
        (fun q pt ->
          Grid.to_physical lay.Layout.grid c pt phys;
          let d =
            Modal.eval_expansion basis block pt
            -. exact ~pos:[| phys.(0) |] ~vel:[| phys.(1) |]
          in
          err := !err +. (wts.(q) *. d *. d *. jac))
        pts);
  sqrt !err

let test_advection_convergence () =
  List.iter
    (fun p ->
      let e1 = advection_error ~cells_c:8 ~p in
      let e2 = advection_error ~cells_c:16 ~p in
      let order = log (e1 /. e2) /. log 2.0 in
      if order < float_of_int p +. 0.5 then
        Alcotest.failf "p=%d: order %.2f too low (e: %.3e -> %.3e)" p order e1 e2)
    [ 1; 2 ]

let () =
  Alcotest.run "dg_vlasov"
    [
      ( "conservation",
        [
          Alcotest.test_case "uniform steady state" `Quick test_uniform_steady;
          Alcotest.test_case "mass conservation" `Quick test_mass_conservation;
          Alcotest.test_case "energy exchange identity (Eq. 9)" `Quick
            test_energy_exchange_identity;
        ] );
      ( "accuracy",
        [
          Alcotest.test_case "advection convergence order" `Slow
            test_advection_convergence;
        ] );
    ]
