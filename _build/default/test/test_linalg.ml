(* Dense linear algebra and tridiagonal solver tests. *)

module Mat = Dg_linalg.Mat
module Lu = Dg_linalg.Lu
module Tridiag = Dg_linalg.Tridiag

let check_close ?(tol = 1e-10) msg a b =
  if not (Dg_util.Float_cmp.close ~rtol:tol ~atol:tol a b) then
    Alcotest.failf "%s: %.17g <> %.17g" msg a b

let random_mat rng n =
  Mat.init n n (fun _ _ -> Random.State.float rng 2.0 -. 1.0)

let test_matvec () =
  let a = Mat.init 2 3 (fun i j -> float_of_int ((i * 3) + j + 1)) in
  let y = Array.make 2 0.0 in
  Mat.matvec a [| 1.0; 2.0; 3.0 |] y;
  check_close "row0" 14.0 y.(0);
  check_close "row1" 32.0 y.(1);
  Mat.matvec_acc a ~scale:2.0 [| 1.0; 0.0; 0.0 |] y;
  check_close "acc" 16.0 y.(0)

let test_matmul_transpose () =
  let rng = Random.State.make [| 1 |] in
  let a = random_mat rng 4 and b = random_mat rng 4 in
  let ab = Mat.matmul a b in
  (* (AB)^T = B^T A^T *)
  let lhs = Mat.transpose ab in
  let rhs = Mat.matmul (Mat.transpose b) (Mat.transpose a) in
  for i = 0 to 3 do
    for j = 0 to 3 do
      check_close "transpose identity" (Mat.get lhs i j) (Mat.get rhs i j)
    done
  done

let test_lu_solve () =
  let rng = Random.State.make [| 2 |] in
  for n = 1 to 8 do
    let a = random_mat rng n in
    let x = Array.init n (fun i -> float_of_int i -. 2.0) in
    let b = Array.make n 0.0 in
    Mat.matvec a x b;
    let x' = Lu.solve a b in
    Array.iteri (fun i v -> check_close ~tol:1e-8 "lu solve" x.(i) v) x'
  done

let test_lu_inverse () =
  let rng = Random.State.make [| 3 |] in
  let a = random_mat rng 5 in
  let ai = Lu.inverse a in
  let id = Mat.matmul a ai in
  for i = 0 to 4 do
    for j = 0 to 4 do
      check_close ~tol:1e-8 "A A^-1 = I"
        (if i = j then 1.0 else 0.0)
        (Mat.get id i j)
    done
  done

let test_singular () =
  let a = Mat.init 3 3 (fun i _ -> float_of_int i) in
  Alcotest.check_raises "singular raises" Lu.Singular (fun () ->
      ignore (Lu.decompose a));
  check_close "det singular" 0.0 (Lu.determinant a)

let test_determinant () =
  let a = Mat.init 2 2 (fun i j -> [| [| 3.0; 1.0 |]; [| 4.0; 2.0 |] |].(i).(j)) in
  check_close "det 2x2" 2.0 (Lu.determinant a);
  check_close "det id" 1.0 (Lu.determinant (Mat.identity 6))

let qcheck_lu =
  QCheck.Test.make ~name:"LU reconstructs solutions" ~count:50
    (QCheck.int_range 1 10)
    (fun n ->
      let rng = Random.State.make [| n; 77 |] in
      let a = random_mat rng n in
      (* make it diagonally dominant so it's well conditioned *)
      for i = 0 to n - 1 do
        Mat.set a i i (Mat.get a i i +. float_of_int n)
      done;
      let x = Array.init n (fun _ -> Random.State.float rng 4.0 -. 2.0) in
      let b = Array.make n 0.0 in
      Mat.matvec a x b;
      let x' = Lu.solve a b in
      Dg_util.Float_cmp.array_close ~rtol:1e-8 ~atol:1e-8 x x')

let test_tridiag () =
  let n = 20 in
  (* -u'' = 1 with u(0)=u(n+1)=0 discretized: exact solution is parabolic *)
  let a = Array.make n (-1.0) and b = Array.make n 2.0 and c = Array.make n (-1.0) in
  a.(0) <- 0.0;
  c.(n - 1) <- 0.0;
  let d = Array.make n 1.0 in
  let x = Tridiag.solve ~a ~b ~c ~d in
  (* residual check *)
  for i = 0 to n - 1 do
    let lo = if i = 0 then 0.0 else x.(i - 1) in
    let hi = if i = n - 1 then 0.0 else x.(i + 1) in
    check_close "tridiag residual" 1.0 ((2.0 *. x.(i)) -. lo -. hi)
  done

let test_tridiag_cyclic () =
  let n = 16 in
  let a = Array.make n 1.0 and b = Array.make n 4.0 and c = Array.make n 1.0 in
  let rng = Random.State.make [| 5 |] in
  let x_true = Array.init n (fun _ -> Random.State.float rng 2.0 -. 1.0) in
  let d =
    Array.init n (fun i ->
        (a.(i) *. x_true.((i + n - 1) mod n))
        +. (b.(i) *. x_true.(i))
        +. (c.(i) *. x_true.((i + 1) mod n)))
  in
  let x = Tridiag.solve_cyclic ~a ~b ~c ~d in
  Array.iteri (fun i v -> check_close ~tol:1e-9 "cyclic" x_true.(i) v) x

let () =
  Alcotest.run "dg_linalg"
    [
      ( "mat",
        [
          Alcotest.test_case "matvec" `Quick test_matvec;
          Alcotest.test_case "matmul/transpose" `Quick test_matmul_transpose;
        ] );
      ( "lu",
        [
          Alcotest.test_case "solve" `Quick test_lu_solve;
          Alcotest.test_case "inverse" `Quick test_lu_inverse;
          Alcotest.test_case "singular" `Quick test_singular;
          Alcotest.test_case "determinant" `Quick test_determinant;
          QCheck_alcotest.to_alcotest qcheck_lu;
        ] );
      ( "tridiag",
        [
          Alcotest.test_case "thomas" `Quick test_tridiag;
          Alcotest.test_case "cyclic" `Quick test_tridiag_cyclic;
        ] );
    ]
