(* Five-moment multifluid solver tests: exact preservation of uniform
   states, conservation, the Sod shock tube, advection accuracy, and the
   two-fluid Langmuir oscillation through the Lorentz source coupling. *)

module Grid = Dg_grid.Grid
module Field = Dg_grid.Field
module Euler = Dg_fluid.Euler

let sync2 u bcs = Field.sync_ghosts u bcs

let step_rk2 solver ~u ~bcs ~dt ~source =
  (* SSP-RK2 with the FV rhs + optional source *)
  let rhs uu out =
    sync2 uu bcs;
    Euler.rhs solver ~u:uu ~out;
    match source with Some s -> s ~u:uu ~out | None -> ()
  in
  let k1 = Field.clone u in
  let out = Field.clone u in
  rhs u out;
  Field.copy_into ~src:u ~dst:k1;
  Field.axpy ~s:dt ~src:out ~dst:k1;
  rhs k1 out;
  (* u = 1/2 u + 1/2 (k1 + dt out) *)
  Field.axpy ~s:dt ~src:out ~dst:k1;
  Field.scale u 0.5;
  Field.axpy ~s:0.5 ~src:k1 ~dst:u

let test_uniform_preserved () =
  let grid = Grid.make ~cells:[| 16; 8 |] ~lower:[| 0.; 0. |] ~upper:[| 1.; 1. |] in
  let s = Euler.create grid in
  let u = Euler.alloc s in
  Euler.set_primitive s ~u ~init:(fun _ -> (1.3, [| 0.4; -0.2; 0.1 |], 0.7));
  let bcs = Array.make 2 (Field.Periodic, Field.Periodic) in
  sync2 u bcs;
  (* clone after a sync so ghost regions are comparable *)
  let u0 = Field.clone u in
  for _ = 1 to 10 do
    step_rk2 s ~u ~bcs ~dt:0.01 ~source:None
  done;
  let d = Dg_util.Float_cmp.max_abs_diff (Field.data u) (Field.data u0) in
  if d > 1e-13 then Alcotest.failf "uniform state drifted: %.3e" d

let test_conservation () =
  let grid = Grid.make ~cells:[| 64 |] ~lower:[| 0. |] ~upper:[| 1. |] in
  let s = Euler.create grid in
  let u = Euler.alloc s in
  Euler.set_primitive s ~u ~init:(fun x ->
      (1.0 +. (0.3 *. sin (2.0 *. Float.pi *. x.(0))), [| 0.2; 0.0; 0.0 |], 1.0));
  let bcs = [| (Field.Periodic, Field.Periodic) |] in
  let t0 = Euler.totals s ~u in
  for _ = 1 to 50 do
    let dt = Euler.suggest_dt s ~u in
    step_rk2 s ~u ~bcs ~dt ~source:None
  done;
  let t1 = Euler.totals s ~u in
  Array.iteri
    (fun k v ->
      if not (Dg_util.Float_cmp.close ~rtol:1e-12 ~atol:1e-12 v t1.(k)) then
        Alcotest.failf "component %d not conserved: %.15g -> %.15g" k v t1.(k))
    t0

(* Sod shock tube: compare the density at representative points against the
   exact Riemann solution at t = 0.2 (gamma = 1.4). *)
let test_sod () =
  let n = 400 in
  let grid = Grid.make ~cells:[| n |] ~lower:[| 0. |] ~upper:[| 1. |] in
  let s = Euler.create ~gas_gamma:1.4 grid in
  let u = Euler.alloc s in
  Euler.set_primitive s ~u ~init:(fun x ->
      if x.(0) < 0.5 then (1.0, [| 0.; 0.; 0. |], 1.0)
      else (0.125, [| 0.; 0.; 0. |], 0.1));
  let bcs = [| (Field.Copy, Field.Copy) |] in
  let t = ref 0.0 in
  while !t < 0.2 do
    let dt = Float.min (Euler.suggest_dt s ~u) (0.2 -. !t) in
    step_rk2 s ~u ~bcs ~dt ~source:None;
    t := !t +. dt
  done;
  let rho_at x =
    let c = [| min (n - 1) (int_of_float (x *. float_of_int n)) |] in
    Field.get u c Euler.irho
  in
  (* exact values (standard Sod solution at t=0.2):
     rarefaction tail ~0.426 around x~0.49, contact plateau 0.42631->0.26557
     at x~0.685, shock at x~0.85 *)
  let check msg x expect tol =
    let v = rho_at x in
    if Float.abs (v -. expect) > tol then
      Alcotest.failf "%s at x=%.2f: rho=%.4f expected %.4f" msg x v expect
  in
  check "left state" 0.05 1.0 1e-3;
  check "fan plateau" 0.58 0.4263 0.02;
  check "contact plateau" 0.75 0.2656 0.02;
  check "right state" 0.95 0.125 1e-3;
  (* shock position: density jumps from 0.2656 to 0.125 near x = 0.85 *)
  let jump = rho_at 0.83 -. rho_at 0.88 in
  if jump < 0.1 then Alcotest.failf "shock missing near x=0.85 (jump %.3f)" jump

(* Smooth advection of a density pulse at uniform velocity/pressure is a
   linear contact wave: second-order convergence. *)
let advect_error n =
  let grid = Grid.make ~cells:[| n |] ~lower:[| 0. |] ~upper:[| 1. |] in
  let s = Euler.create ~gas_gamma:1.4 grid in
  let u = Euler.alloc s in
  let prof x = 1.0 +. (0.2 *. sin (2.0 *. Float.pi *. x)) in
  Euler.set_primitive s ~u ~init:(fun x -> (prof x.(0), [| 1.0; 0.; 0. |], 1.0));
  let bcs = [| (Field.Periodic, Field.Periodic) |] in
  let tend = 0.3 in
  let t = ref 0.0 in
  while !t < tend do
    let dt = Float.min (0.3 /. float_of_int n) (tend -. !t) in
    step_rk2 s ~u ~bcs ~dt ~source:None;
    t := !t +. dt
  done;
  let err = ref 0.0 in
  Grid.iter_cells grid (fun _ c ->
      let x = ((float_of_int c.(0) +. 0.5) /. float_of_int n) -. tend in
      err := !err +. Float.abs (Field.get u c Euler.irho -. prof x));
  !err /. float_of_int n

let test_advection_convergence () =
  let e1 = advect_error 64 and e2 = advect_error 128 in
  let order = log (e1 /. e2) /. log 2.0 in
  if order < 1.5 then Alcotest.failf "order %.2f too low (%.2e -> %.2e)" order e1 e2

(* Two-fluid (electron/proton) Langmuir oscillation: a small electron
   velocity perturbation oscillates at omega^2 = ope^2 + opi^2; the energy
   sloshes between fluid kinetic energy and E_x via the Lorentz source and
   Ampere's law.  This is the fluid side of the paper's hybrid
   moment-kinetic coupling. *)
let test_two_fluid_langmuir () =
  let n = 32 in
  let grid = Grid.make ~cells:[| n |] ~lower:[| 0. |] ~upper:[| 2.0 *. Float.pi |] in
  let elc = Euler.create ~gas_gamma:(5.0 /. 3.0) ~charge:(-1.0) ~mass:1.0 grid in
  let ion = Euler.create ~gas_gamma:(5.0 /. 3.0) ~charge:1.0 ~mass:25.0 grid in
  let ue = Euler.alloc elc and ui = Euler.alloc ion in
  let v0 = 1e-3 in
  Euler.set_primitive elc ~u:ue ~init:(fun x ->
      (1.0, [| v0 *. cos x.(0); 0.; 0. |], 1e-6));
  (* ion mass density 25 (n=1, m=25) *)
  Euler.set_primitive ion ~u:ui ~init:(fun _ -> (25.0, [| 0.; 0.; 0. |], 1e-6));
  let ex = Array.make n 0.0 in
  let bcs = [| (Field.Periodic, Field.Periodic) |] in
  (* omega^2 = sum_s q^2 n / m = 1 + 1/25 *)
  let omega = sqrt (1.0 +. (1.0 /. 25.0)) in
  let dt = 0.02 in
  let nsteps = int_of_float (Float.ceil (Float.pi /. omega /. dt)) in
  let dt = Float.pi /. omega /. float_of_int nsteps in
  (* leapfrog-ish splitting: fluids with frozen E, then Ampere *)
  let em_of ex c = [| ex.(c.(0)); 0.; 0.; 0.; 0.; 0. |] in
  for _ = 1 to nsteps do
    let src solver ~u ~out = Euler.add_lorentz_source solver ~u ~em_at:(em_of ex) ~out in
    step_rk2 elc ~u:ue ~bcs ~dt ~source:(Some (src elc));
    step_rk2 ion ~u:ui ~bcs ~dt ~source:(Some (src ion));
    (* dE/dt = -J *)
    Grid.iter_cells grid (fun idx c ->
        let je = (Euler.current_at elc ~u:ue c).(0) in
        let ji = (Euler.current_at ion ~u:ui c).(0) in
        ex.(idx) <- ex.(idx) -. (dt *. (je +. ji)))
  done;
  (* after half a period the electron velocity perturbation has flipped *)
  let vat i =
    let c = [| i |] in
    Field.get ue c Euler.imx /. Field.get ue c Euler.irho
  in
  let v_end = vat 0 in
  (* x=pi/n/2 ~ 0: initial velocity ~ +v0 there; expect ~ -v0 *)
  if Float.abs ((v_end /. v0) +. 1.0) > 0.15 then
    Alcotest.failf "Langmuir half-period flip: v/v0 = %.3f (expected ~ -1)"
      (v_end /. v0)

let () =
  Alcotest.run "dg_fluid"
    [
      ( "euler",
        [
          Alcotest.test_case "uniform preserved" `Quick test_uniform_preserved;
          Alcotest.test_case "conservation" `Quick test_conservation;
          Alcotest.test_case "sod shock tube" `Quick test_sod;
          Alcotest.test_case "advection order" `Quick test_advection_convergence;
        ] );
      ( "two-fluid",
        [ Alcotest.test_case "langmuir oscillation" `Quick test_two_fluid_langmuir ] );
    ]
