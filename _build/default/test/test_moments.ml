(* Moment-operator tests: moments of a projected Maxwellian match the
   analytic density, mean velocity, and energy. *)

module Layout = Dg_kernels.Layout
module Modal = Dg_basis.Modal
module Grid = Dg_grid.Grid
module Field = Dg_grid.Field
module Moments = Dg_moments.Moments

let check_close ?(tol = 1e-6) msg a b =
  if not (Dg_util.Float_cmp.close ~rtol:tol ~atol:tol a b) then
    Alcotest.failf "%s: %.12g <> %.12g" msg a b

let maxwellian ~n0 ~u ~vt vel =
  let vdim = Array.length vel in
  let arg = ref 0.0 in
  for k = 0 to vdim - 1 do
    let d = vel.(k) -. u.(k) in
    arg := !arg +. (d *. d)
  done;
  n0
  /. ((2.0 *. Float.pi *. vt *. vt) ** (float_of_int vdim /. 2.0))
  *. exp (-. !arg /. (2.0 *. vt *. vt))

let make ?(cells_c = 2) ~cdim ~vdim ~p ~cells_v () =
  let pdim = cdim + vdim in
  let cells = Array.init pdim (fun d -> if d < cdim then cells_c else cells_v) in
  let lower = Array.init pdim (fun d -> if d < cdim then 0.0 else -8.0) in
  let upper = Array.init pdim (fun d -> if d < cdim then 1.0 else 8.0) in
  let grid = Grid.make ~cells ~lower ~upper in
  Layout.make ~cdim ~vdim ~family:Modal.Serendipity ~poly_order:p ~grid

let test_maxwellian_moments () =
  List.iter
    (fun (vdim, cells_v) ->
      let lay = make ~cdim:1 ~vdim ~p:2 ~cells_v () in
      let np = Layout.num_basis lay in
      let n0 = 2.5 and vt = 1.0 in
      let u = Array.init vdim (fun k -> 0.3 *. float_of_int (k + 1)) in
      let f = Field.create lay.Layout.grid ~ncomp:np in
      Dg_app.Vm_app.project_phase lay
        ~f:(fun ~pos:_ ~vel -> maxwellian ~n0 ~u ~vt vel)
        f;
      let mom = Moments.make lay in
      (* total mass = n0 * |config domain| *)
      check_close "total mass" n0 (Moments.total_mass mom ~f);
      (* momentum: m=1; M1_k total = n0 * u_k *)
      let nc = Layout.num_cbasis lay in
      let m1 = Field.create lay.Layout.cgrid ~ncomp:(3 * nc) in
      Moments.accumulate_current mom ~charge:1.0 ~f ~out:m1;
      for k = 0 to vdim - 1 do
        let tot =
          Moments.total_of_config_field lay ~fld:m1 ~comp_off:(k * nc)
        in
        check_close (Printf.sprintf "momentum %d" k) (n0 *. u.(k)) tot
      done;
      (* kinetic energy: (1/2) n0 (vdim vt^2 + |u|^2) *)
      let u2 = Array.fold_left (fun a x -> a +. (x *. x)) 0.0 u in
      check_close "kinetic energy"
        (0.5 *. n0 *. ((float_of_int vdim *. vt *. vt) +. u2))
        (Moments.total_kinetic_energy mom ~mass:1.0 ~f))
    [ (1, 24); (2, 16) ]

(* Moments must be linear and the density of a spatially-varying profile
   must track the profile coefficients exactly. *)
let test_density_profile () =
  let lay = make ~cells_c:8 ~cdim:1 ~vdim:1 ~p:2 ~cells_v:24 () in
  let np = Layout.num_basis lay in
  let f = Field.create lay.Layout.grid ~ncomp:np in
  let prof x = 1.0 +. (0.4 *. sin (2.0 *. Float.pi *. x)) in
  Dg_app.Vm_app.project_phase lay
    ~f:(fun ~pos ~vel -> prof pos.(0) *. maxwellian ~n0:1.0 ~u:[| 0.0 |] ~vt:0.8 vel)
    f;
  let mom = Moments.make lay in
  let nc = Layout.num_cbasis lay in
  let dens = Field.create lay.Layout.cgrid ~ncomp:nc in
  Moments.m0 mom ~f ~out:dens;
  (* compare pointwise density against the profile at cell centers *)
  let cb = lay.Layout.cbasis in
  let block = Array.make nc 0.0 in
  Grid.iter_cells lay.Layout.cgrid (fun _ c ->
      Field.read_block dens c block;
      let ctr = Array.make 1 0.0 in
      Grid.cell_center lay.Layout.cgrid c ctr;
      check_close ~tol:1e-4 "density profile" (prof ctr.(0))
        (Modal.eval_expansion cb block [| 0.0 |]))

(* M2 of a shifted distribution obeys the parallel-axis relation used in
   collision operators: M2 = n(u^2 + vdim*vt^2) for a Maxwellian. *)
let test_m2 () =
  let lay = make ~cdim:1 ~vdim:1 ~p:2 ~cells_v:32 () in
  let np = Layout.num_basis lay in
  let f = Field.create lay.Layout.grid ~ncomp:np in
  let n0 = 1.0 and u = 1.2 and vt = 0.7 in
  Dg_app.Vm_app.project_phase lay
    ~f:(fun ~pos:_ ~vel -> maxwellian ~n0 ~u:[| u |] ~vt vel)
    f;
  let mom = Moments.make lay in
  let nc = Layout.num_cbasis lay in
  let m2 = Field.create lay.Layout.cgrid ~ncomp:nc in
  Moments.m2 mom ~f ~out:m2;
  let tot = Moments.total_of_config_field lay ~fld:m2 ~comp_off:0 in
  check_close "m2 parallel axis" (n0 *. ((u *. u) +. (vt *. vt))) tot

let () =
  Alcotest.run "dg_moments"
    [
      ( "moments",
        [
          Alcotest.test_case "maxwellian moments" `Quick test_maxwellian_moments;
          Alcotest.test_case "density profile" `Quick test_density_profile;
          Alcotest.test_case "m2" `Quick test_m2;
        ] );
    ]
