(* Diagnostics tests: history bookkeeping, growth-rate fitting on synthetic
   exponentials, mode amplitudes, drift metrics. *)

module Diag = Dg_diag.Diag
module Grid = Dg_grid.Grid
module Field = Dg_grid.Field

let test_history () =
  let h = Diag.make_history [| "a"; "b" |] in
  Diag.record h ~time:0.0 [| 1.0; 10.0 |];
  Diag.record h ~time:1.0 [| 2.0; 20.0 |];
  Diag.record h ~time:2.0 [| 3.0; 30.0 |];
  Alcotest.(check int) "samples" 3 (Diag.num_samples h);
  Alcotest.(check (array (float 0.0))) "times" [| 0.0; 1.0; 2.0 |] (Diag.times h);
  Alcotest.(check (array (float 0.0))) "col b" [| 10.0; 20.0; 30.0 |] (Diag.column h "b");
  Alcotest.check_raises "unknown column" (Invalid_argument "Diag.column: no column z")
    (fun () -> ignore (Diag.column h "z"))

let test_growth_rate () =
  let h = Diag.make_history [| "e" |] in
  let gamma = 0.37 in
  for i = 0 to 100 do
    let t = float_of_int i *. 0.1 in
    Diag.record h ~time:t [| 3.0 *. exp (gamma *. t) |]
  done;
  let fit = Diag.growth_rate h ~column:"e" ~t0:1.0 ~t1:9.0 in
  if not (Dg_util.Float_cmp.close ~rtol:1e-6 ~atol:1e-6 fit gamma) then
    Alcotest.failf "growth rate %.6f <> %.6f" fit gamma;
  (* empty window -> nan *)
  Alcotest.(check bool) "nan on empty" true
    (Float.is_nan (Diag.growth_rate h ~column:"e" ~t0:100.0 ~t1:200.0))

let test_relative_drift () =
  let h = Diag.make_history [| "q" |] in
  Diag.record h ~time:0.0 [| 10.0 |];
  Diag.record h ~time:1.0 [| 10.1 |];
  Alcotest.(check (float 1e-12)) "drift" 0.01 (Diag.relative_drift h "q")

let test_mode_amplitude () =
  let grid = Grid.make ~cells:[| 64 |] ~lower:[| 0.0 |] ~upper:[| 1.0 |] in
  let f = Field.create grid ~ncomp:2 in
  (* basis_dim=1: cell average = coeff / sqrt(2); store amplitude A at mode 3 *)
  let a = 0.25 in
  Grid.iter_cells grid (fun idx c ->
      let v = a *. cos (2.0 *. Float.pi *. 3.0 *. float_of_int idx /. 64.0) in
      Field.set f c 0 (v *. sqrt 2.0));
  let amp3 = Diag.mode_amplitude_1d f ~comp:0 ~basis_dim:1 ~k:3 in
  let amp5 = Diag.mode_amplitude_1d f ~comp:0 ~basis_dim:1 ~k:5 in
  (* the DFT convention puts A/2 in each of the +-k bins *)
  if not (Dg_util.Float_cmp.close ~rtol:1e-10 (a /. 2.0) amp3) then
    Alcotest.failf "mode 3 amplitude %.6g <> %.6g" amp3 (a /. 2.0);
  if amp5 > 1e-12 then Alcotest.failf "mode 5 should vanish: %g" amp5

let test_csv_roundtrip_format () =
  let h = Diag.make_history [| "x" |] in
  Diag.record h ~time:0.5 [| 42.0 |];
  let path = Filename.temp_file "dgdiag" ".csv" in
  Diag.write_csv h path;
  let ic = open_in path in
  let header = input_line ic in
  let row = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "header" "time,x" header;
  Alcotest.(check string) "row" "0.5,42" row

(* Field-particle correlation on an analytically-known configuration:
   f = Maxwellian (independent of x), E = E0 constant, so
   C_E(v) = -q (v^2/2) f'(v) E0 = q E0 (v^3/2) f(v) / vt^2. *)
let test_fpc_analytic () =
  let module Modal = Dg_basis.Modal in
  let module Layout = Dg_kernels.Layout in
  let vt = 1.0 and e0 = 0.25 and charge = -1.0 in
  let grid =
    Grid.make ~cells:[| 4; 32 |] ~lower:[| 0.0; -6.0 |] ~upper:[| 1.0; 6.0 |]
  in
  let lay = Layout.make ~cdim:1 ~vdim:1 ~family:Modal.Serendipity ~poly_order:2 ~grid in
  let np = Layout.num_basis lay in
  let f = Field.create grid ~ncomp:np in
  let fmax v = exp (-.(v *. v) /. (2.0 *. vt *. vt)) /. sqrt (2.0 *. Float.pi) in
  Dg_app.Vm_app.project_phase lay ~f:(fun ~pos:_ ~vel -> fmax vel.(0)) f;
  let nc = Layout.num_cbasis lay in
  let em = Field.create lay.Dg_kernels.Layout.cgrid ~ncomp:(8 * nc) in
  (* constant E_x = e0: coefficient e0 * sqrt(2) on the constant mode *)
  Grid.iter_cells lay.Dg_kernels.Layout.cgrid (fun _ c ->
      Field.set em c 0 (e0 *. sqrt 2.0));
  let fpc =
    Dg_diag.Fpc.create ~basis:lay.Dg_kernels.Layout.basis
      ~cbasis:lay.Dg_kernels.Layout.cbasis ~charge ~x0:0.3 ~vmin:(-5.0)
      ~vmax:5.0 ~nv:50
  in
  Dg_diag.Fpc.sample fpc ~f ~em;
  Dg_diag.Fpc.sample fpc ~f ~em;
  let vs = Dg_diag.Fpc.velocity_grid fpc in
  let c = Dg_diag.Fpc.correlation fpc in
  Array.iteri
    (fun i v ->
      (* the projected-Maxwellian derivative loses relative accuracy deep in
         the tail; compare where f is meaningfully resolved *)
      if Float.abs v <= 3.5 then begin
        let expected =
          -.charge *. (v *. v /. 2.0) *. (-.v /. (vt *. vt) *. fmax v) *. e0
        in
        if not (Dg_util.Float_cmp.close ~rtol:5e-2 ~atol:1e-4 expected c.(i))
        then Alcotest.failf "C_E(%.2f) = %.5g, expected %.5g" v c.(i) expected
      end)
    vs;
  (* net transfer vanishes by symmetry, up to the (small, tail-dominated)
     projection asymmetries: compare against the gross transfer *)
  let gross =
    Array.fold_left (fun a x -> a +. Float.abs x) 0.0 c
    *. (vs.(1) -. vs.(0))
  in
  if Float.abs (Dg_diag.Fpc.net_transfer fpc) > 5e-3 *. gross then
    Alcotest.failf "net transfer should vanish by symmetry: %g (gross %g)"
      (Dg_diag.Fpc.net_transfer fpc) gross

let () =
  Alcotest.run "dg_diag"
    [
      ( "diag",
        [
          Alcotest.test_case "history" `Quick test_history;
          Alcotest.test_case "growth rate fit" `Quick test_growth_rate;
          Alcotest.test_case "relative drift" `Quick test_relative_drift;
          Alcotest.test_case "mode amplitude" `Quick test_mode_amplitude;
          Alcotest.test_case "csv" `Quick test_csv_roundtrip_format;
          Alcotest.test_case "field-particle correlation" `Quick test_fpc_analytic;
        ] );
    ]
