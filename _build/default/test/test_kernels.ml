(* The alias-free property: every coupling tensor built from factorized 1D
   Legendre tables must equal the direct symbolic integral of the discrete
   weak form, entry for entry. *)

open Dg_kernels
module Modal = Dg_basis.Modal
module Mpoly = Dg_cas.Mpoly
module Grid = Dg_grid.Grid

let check_close ?(tol = 1e-11) msg a b =
  if not (Dg_util.Float_cmp.close ~rtol:tol ~atol:tol a b) then
    Alcotest.failf "%s: %.17g <> %.17g" msg a b

let make_layout ~cdim ~vdim ~family ~p =
  let pdim = cdim + vdim in
  let cells = Array.make pdim 2 in
  let lower = Array.make pdim (-1.0) in
  let upper = Array.make pdim 1.0 in
  (* stretch velocity dims so jacobian factors are exercised *)
  for d = cdim to pdim - 1 do
    lower.(d) <- -6.0;
    upper.(d) <- 6.0
  done;
  let grid = Grid.make ~cells ~lower ~upper in
  Layout.make ~cdim ~vdim ~family ~poly_order:p ~grid

(* Dense reconstruction of a sparse 3-tensor. *)
let densify_t3 (t : Sparse.t3) ~np =
  let d = Array.init np (fun _ -> Array.make_matrix np np 0.0) in
  Array.iteri
    (fun e c -> d.(t.Sparse.li.(e)).(t.Sparse.mi.(e)).(t.Sparse.ni.(e)) <- c)
    t.Sparse.cv;
  d

let densify_t2 (t : Sparse.t2) ~np =
  let d = Array.make_matrix np np 0.0 in
  Array.iteri (fun e v -> d.(t.Sparse.ri.(e)).(t.Sparse.ci.(e)) <- v) t.Sparse.vv;
  d

(* Volume tensor vs direct symbolic integration of int w_m w_n dw_l/dxi. *)
let test_volume_vs_symbolic () =
  List.iter
    (fun (family, cdim, vdim, p) ->
      let lay = make_layout ~cdim ~vdim ~family ~p in
      let basis = lay.Layout.basis in
      let np = Modal.num_basis basis in
      let polys = Array.init np (Modal.to_mpoly basis) in
      for dir = 0 to lay.Layout.pdim - 1 do
        let support =
          if Layout.is_config_dir lay dir then
            Tensors.streaming_support lay ~dir
          else Tensors.acceleration_support lay ~vdir:dir
        in
        let vol = Tensors.volume basis ~support ~dir in
        let dense = densify_t3 vol ~np in
        Array.iter
          (fun m ->
            for n = 0 to np - 1 do
              for l = 0 to np - 1 do
                let expected =
                  Mpoly.integrate_ref
                    (Mpoly.mul polys.(m)
                       (Mpoly.mul polys.(n) (Mpoly.deriv ~i:dir polys.(l))))
                in
                check_close
                  (Printf.sprintf "vol dir=%d (l=%d,m=%d,n=%d)" dir l m n)
                  expected
                  dense.(l).(m).(n)
              done
            done)
          support
      done)
    [
      (Modal.Tensor, 1, 1, 2);
      (Modal.Serendipity, 1, 2, 2);
      (Modal.Maximal_order, 1, 1, 3);
    ]

(* Surface tensor vs direct symbolic integration of the face traces. *)
let test_surface_vs_symbolic () =
  let lay = make_layout ~cdim:1 ~vdim:2 ~family:Modal.Tensor ~p:1 in
  let basis = lay.Layout.basis in
  let np = Modal.num_basis basis in
  let polys = Array.init np (Modal.to_mpoly basis) in
  let side_val = function Tensors.Lo -> -1.0 | Tensors.Hi -> 1.0 in
  for dir = 0 to lay.Layout.pdim - 1 do
    let support =
      if Layout.is_config_dir lay dir then Tensors.streaming_support lay ~dir
      else Tensors.acceleration_support lay ~vdir:dir
    in
    List.iter
      (fun (s_l, s_n) ->
        let t = Tensors.surface basis ~support ~dir ~s_l ~s_n in
        let dense = densify_t3 t ~np in
        Array.iter
          (fun m ->
            for n = 0 to np - 1 do
              for l = 0 to np - 1 do
                let trace p s = Mpoly.subst_var ~i:dir ~v:(side_val s) p in
                let expected =
                  Mpoly.integrate_ref_skip ~skip:dir
                    (Mpoly.mul
                       (trace polys.(m) Tensors.Hi)
                       (Mpoly.mul (trace polys.(n) s_n) (trace polys.(l) s_l)))
                in
                check_close
                  (Printf.sprintf "surf dir=%d (l=%d,m=%d,n=%d)" dir l m n)
                  expected
                  dense.(l).(m).(n)
              done
            done)
          support)
      [
        (Tensors.Hi, Tensors.Hi);
        (Tensors.Hi, Tensors.Lo);
        (Tensors.Lo, Tensors.Hi);
        (Tensors.Lo, Tensors.Lo);
      ]
  done

let test_penalty_vs_symbolic () =
  let lay = make_layout ~cdim:1 ~vdim:1 ~family:Modal.Tensor ~p:2 in
  let basis = lay.Layout.basis in
  let np = Modal.num_basis basis in
  let polys = Array.init np (Modal.to_mpoly basis) in
  for dir = 0 to 1 do
    List.iter
      (fun (s_l, s_n) ->
        let t = Tensors.penalty basis ~dir ~s_l ~s_n in
        let dense = densify_t2 t ~np in
        let sv = function Tensors.Lo -> -1.0 | Tensors.Hi -> 1.0 in
        for l = 0 to np - 1 do
          for n = 0 to np - 1 do
            let expected =
              Mpoly.integrate_ref_skip ~skip:dir
                (Mpoly.mul
                   (Mpoly.subst_var ~i:dir ~v:(sv s_l) polys.(l))
                   (Mpoly.subst_var ~i:dir ~v:(sv s_n) polys.(n)))
            in
            check_close "penalty" expected dense.(l).(n)
          done
        done)
      [ (Tensors.Hi, Tensors.Hi); (Tensors.Lo, Tensors.Hi) ]
  done

(* The streaming flux expansion reproduces v_d pointwise in the cell. *)
let test_streaming_alpha () =
  let lay = make_layout ~cdim:1 ~vdim:2 ~family:Modal.Serendipity ~p:2 in
  let basis = lay.Layout.basis in
  let np = Modal.num_basis basis in
  let support = Tensors.streaming_support lay ~dir:0 in
  let alpha = Array.make np 0.0 in
  let vcenter = 1.5 and dv = 0.5 in
  Flux.streaming_alpha lay ~dir:0 ~vcenter ~dv ~support alpha;
  let rng = Random.State.make [| 11 |] in
  for _ = 1 to 20 do
    let xi = Array.init 3 (fun _ -> Random.State.float rng 2.0 -. 1.0) in
    (* paired velocity dim for config dir 0 is phase dim 1 *)
    let v = vcenter +. (0.5 *. dv *. xi.(1)) in
    check_close "streaming alpha eval" v (Modal.eval_expansion basis alpha xi)
  done;
  check_close "max speed" 1.75 (Flux.streaming_max_speed ~vcenter ~dv)

(* The acceleration projection reproduces q/m (E + v x B) pointwise when the
   fields are representable. *)
let test_accel_alpha () =
  let lay = make_layout ~cdim:1 ~vdim:2 ~family:Modal.Tensor ~p:2 in
  let cb = lay.Layout.cbasis in
  let nc = Layout.num_cbasis lay in
  let qm = -2.0 in
  (* E, B as linear functions of x on the reference config cell *)
  let e_fun = [| (fun x -> 1.0 +. (0.5 *. x)); (fun x -> -0.3 +. x); (fun _ -> 0.0) |] in
  let b_fun = [| (fun _ -> 0.0); (fun _ -> 0.0); (fun x -> 2.0 -. (0.25 *. x)) |] in
  let em = Array.make (6 * nc) 0.0 in
  Array.iteri
    (fun c f ->
      let coeffs = Modal.project cb (fun pt -> f pt.(0)) in
      Array.blit coeffs 0 em (c * nc) nc)
    (Array.append e_fun b_fun);
  let vcenter = [| 0.75; -1.25 |] in
  let dv = Grid.dx lay.Layout.vgrid in
  for vdir = 0 to 1 do
    let ctx = Flux.make_accel_ctx lay ~vdir ~qm in
    let np = Modal.num_basis lay.Layout.basis in
    let alpha = Array.make np 0.0 in
    Flux.accel_alpha ctx ~em ~em_off:0 ~ncbasis:nc ~vcenter alpha;
    let rng = Random.State.make [| 13 |] in
    for _ = 1 to 20 do
      let xi = Array.init 3 (fun _ -> Random.State.float rng 2.0 -. 1.0) in
      let x = xi.(0) in
      let vx = vcenter.(0) +. (0.5 *. dv.(0) *. xi.(1)) in
      let vy = vcenter.(1) +. (0.5 *. dv.(1) *. xi.(2)) in
      let bz = b_fun.(2) x in
      let expected =
        match vdir with
        | 0 -> qm *. (e_fun.(0) x +. (vy *. bz))
        | _ -> qm *. (e_fun.(1) x -. (vx *. bz))
      in
      check_close
        (Printf.sprintf "accel alpha vdir=%d" vdir)
        expected
        (Modal.eval_expansion lay.Layout.basis alpha xi)
    done;
    (* the penalty bound really bounds |alpha| *)
    let bound = Flux.accel_max_speed ctx alpha in
    for _ = 1 to 50 do
      let xi = Array.init 3 (fun _ -> Random.State.float rng 2.0 -. 1.0) in
      let v = Float.abs (Modal.eval_expansion lay.Layout.basis alpha xi) in
      if v > bound +. 1e-9 then Alcotest.failf "penalty bound violated: %g > %g" v bound
    done
  done

(* Velocity-moment tables vs quadrature. *)
let test_vspace_tables () =
  let vt = Tensors.vspace_tables 3 in
  let quad r n =
    Dg_cas.Quadrature.integrate ~dim:1 ~n:6 (fun pt ->
        (pt.(0) ** float_of_int r) *. Dg_cas.Legendre.eval_normalized n pt.(0))
  in
  for n = 0 to 3 do
    check_close "i0" (quad 0 n) vt.Tensors.i0.(n);
    check_close "i1" (quad 1 n) vt.Tensors.i1.(n);
    check_close "i2" (quad 2 n) vt.Tensors.i2.(n)
  done

(* Sparsity sanity: the 1X2V p=1 tensor-basis volume streaming tensor should
   be small (the paper's Fig. 1 kernel has ~70 multiplications). *)
let test_sparsity () =
  let lay = make_layout ~cdim:1 ~vdim:2 ~family:Modal.Tensor ~p:1 in
  let k = Tensors.make_dir lay ~dir:0 in
  let np = Modal.num_basis lay.Layout.basis in
  let dense_size = np * np * 2 in
  Alcotest.(check bool)
    "volume tensor much sparser than dense" true
    (Sparse.t3_nnz k.Tensors.vol * 4 < dense_size * 2);
  Alcotest.(check bool) "nonempty" true (Sparse.t3_nnz k.Tensors.vol > 0)

let () =
  Alcotest.run "dg_kernels"
    [
      ( "tensors",
        [
          Alcotest.test_case "volume vs symbolic" `Quick test_volume_vs_symbolic;
          Alcotest.test_case "surface vs symbolic" `Quick test_surface_vs_symbolic;
          Alcotest.test_case "penalty vs symbolic" `Quick test_penalty_vs_symbolic;
          Alcotest.test_case "sparsity" `Quick test_sparsity;
        ] );
      ( "flux",
        [
          Alcotest.test_case "streaming alpha" `Quick test_streaming_alpha;
          Alcotest.test_case "acceleration alpha" `Quick test_accel_alpha;
        ] );
      ("vspace", [ Alcotest.test_case "moment tables" `Quick test_vspace_tables ]);
    ]
