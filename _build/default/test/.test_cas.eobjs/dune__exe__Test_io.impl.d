test/test_io.ml: Alcotest Array Dg_basis Dg_grid Dg_io Dg_util Filename List Random String Sys
