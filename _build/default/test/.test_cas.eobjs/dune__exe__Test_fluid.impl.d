test/test_fluid.ml: Alcotest Array Dg_fluid Dg_grid Dg_util Float
