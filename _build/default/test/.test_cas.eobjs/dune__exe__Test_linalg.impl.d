test/test_linalg.ml: Alcotest Array Dg_linalg Dg_util QCheck QCheck_alcotest Random
