test/test_collisions.mli:
