test/test_nodal.ml: Alcotest Array Dg_basis Dg_grid Dg_kernels Dg_linalg Dg_moments Dg_nodal Dg_util Dg_vlasov Float Random
