test/test_nodal.mli:
