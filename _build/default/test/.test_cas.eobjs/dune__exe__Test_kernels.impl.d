test/test_kernels.ml: Alcotest Array Dg_basis Dg_cas Dg_grid Dg_kernels Dg_util Float Flux Layout List Printf Random Sparse Tensors
