test/test_collisions.ml: Alcotest Array Dg_app Dg_basis Dg_collisions Dg_grid Dg_kernels Dg_moments Dg_time Dg_util Float List Printf Random
