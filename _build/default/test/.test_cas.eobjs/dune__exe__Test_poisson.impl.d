test/test_poisson.ml: Alcotest Array Dg_poisson Dg_util Float List
