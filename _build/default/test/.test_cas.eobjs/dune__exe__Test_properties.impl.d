test/test_properties.ml: Alcotest Array Dg_basis Dg_cas Dg_collisions Dg_grid Dg_io Dg_kernels Dg_moments Dg_util Dg_vlasov Filename Float List Printf QCheck QCheck_alcotest Random Sys
