test/test_poisson.mli:
