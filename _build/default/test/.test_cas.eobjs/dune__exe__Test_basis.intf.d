test/test_basis.mli:
