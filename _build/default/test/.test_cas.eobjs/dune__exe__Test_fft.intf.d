test/test_fft.mli:
