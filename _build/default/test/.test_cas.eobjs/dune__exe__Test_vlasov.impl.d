test/test_vlasov.ml: Alcotest Array Dg_app Dg_basis Dg_cas Dg_grid Dg_kernels Dg_moments Dg_time Dg_util Dg_vlasov Float Fmt List Printf Random
