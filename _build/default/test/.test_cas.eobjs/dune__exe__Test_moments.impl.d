test/test_moments.ml: Alcotest Array Dg_app Dg_basis Dg_grid Dg_kernels Dg_moments Dg_util Float List Printf
