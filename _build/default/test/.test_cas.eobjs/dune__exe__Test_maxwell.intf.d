test/test_maxwell.mli:
