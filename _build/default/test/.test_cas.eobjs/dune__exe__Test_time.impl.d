test/test_time.ml: Alcotest Dg_grid Dg_time Float List
