test/test_diag.ml: Alcotest Array Dg_app Dg_basis Dg_diag Dg_grid Dg_kernels Dg_util Filename Float Sys
