test/test_cas.ml: Alcotest Array Dg_cas Dg_util Fmt Legendre List Mpoly Poly1 Printf QCheck QCheck_alcotest Quadrature Rat
