test/test_grid.ml: Alcotest Array Dg_grid QCheck QCheck_alcotest
