test/test_par.ml: Alcotest Array Atomic Dg_basis Dg_grid Dg_kernels Dg_par Dg_util Dg_vlasov List Random String
