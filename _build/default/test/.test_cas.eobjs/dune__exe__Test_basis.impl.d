test/test_basis.ml: Alcotest Array Dg_basis Dg_cas Dg_util List Modal Nodal_basis Printf QCheck QCheck_alcotest Random
