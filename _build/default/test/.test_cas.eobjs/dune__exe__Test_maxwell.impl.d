test/test_maxwell.ml: Alcotest Array Dg_basis Dg_cas Dg_grid Dg_linalg Dg_lindg Dg_maxwell Dg_time Dg_util Float List Random
