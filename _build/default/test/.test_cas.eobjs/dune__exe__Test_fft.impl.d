test/test_fft.ml: Alcotest Array Dg_fft Dg_util List QCheck QCheck_alcotest Random
