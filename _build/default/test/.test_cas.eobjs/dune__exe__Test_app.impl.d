test/test_app.ml: Alcotest Array Dg_app Dg_grid Dg_vlasov Float
