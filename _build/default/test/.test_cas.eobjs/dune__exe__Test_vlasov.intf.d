test/test_vlasov.mli:
