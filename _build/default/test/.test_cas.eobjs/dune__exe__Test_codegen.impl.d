test/test_codegen.ml: Alcotest Array Dg_basis Dg_codegen Dg_genkernels Dg_grid Dg_kernels Dg_util Random String
