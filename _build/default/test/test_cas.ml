(* Tests for the computer-algebra substrate: exact rationals, univariate and
   multivariate polynomials, Legendre tables, quadrature. *)

open Dg_cas

let rat = Alcotest.testable (Fmt.of_to_string Rat.to_string) Rat.equal

let check_close ?(tol = 1e-12) msg a b =
  if not (Dg_util.Float_cmp.close ~rtol:tol ~atol:tol a b) then
    Alcotest.failf "%s: %.17g <> %.17g" msg a b

(* --- Rat ---------------------------------------------------------------- *)

let test_rat_basic () =
  Alcotest.check rat "1/2 + 1/3" (Rat.make 5 6)
    (Rat.add (Rat.make 1 2) (Rat.make 1 3));
  Alcotest.check rat "normalize sign" (Rat.make (-1) 2) (Rat.make 1 (-2));
  Alcotest.check rat "mul cross-reduce" (Rat.make 1 3)
    (Rat.mul (Rat.make 2 9) (Rat.make 3 2));
  Alcotest.check rat "div" (Rat.make 3 4) (Rat.div (Rat.make 3 8) (Rat.make 1 2));
  Alcotest.(check bool) "compare" true (Rat.compare (Rat.make 1 3) (Rat.make 1 2) < 0)

let test_rat_overflow () =
  let big = Rat.of_int max_int in
  Alcotest.check_raises "mul overflow" Rat.Overflow (fun () ->
      ignore (Rat.mul big (Rat.of_int 2)));
  Alcotest.check_raises "add overflow" Rat.Overflow (fun () ->
      ignore (Rat.add big big))

let rat_gen =
  QCheck.Gen.(
    map2 (fun n d -> Rat.make n (1 + abs d)) (int_range (-1000) 1000)
      (int_range 0 1000))

let arb_rat = QCheck.make ~print:Rat.to_string rat_gen

let qcheck_rat_ring =
  [
    QCheck.Test.make ~name:"rat add commutative" ~count:200
      (QCheck.pair arb_rat arb_rat) (fun (a, b) ->
        Rat.equal (Rat.add a b) (Rat.add b a));
    QCheck.Test.make ~name:"rat mul distributes" ~count:200
      (QCheck.triple arb_rat arb_rat arb_rat) (fun (a, b, c) ->
        Rat.equal (Rat.mul a (Rat.add b c)) (Rat.add (Rat.mul a b) (Rat.mul a c)));
    QCheck.Test.make ~name:"rat inverse" ~count:200 arb_rat (fun a ->
        QCheck.assume (not (Rat.is_zero a));
        Rat.equal Rat.one (Rat.mul a (Rat.inv a)));
  ]

(* --- Poly1 --------------------------------------------------------------- *)

let poly_gen =
  QCheck.Gen.(
    map
      (fun l -> Poly1.of_coeffs (List.map Rat.of_int l))
      (list_size (int_range 0 6) (int_range (-20) 20)))

let arb_poly = QCheck.make ~print:Poly1.to_string poly_gen

let test_poly1_basic () =
  let p = Poly1.of_coeffs [ Rat.of_int 1; Rat.of_int 2; Rat.of_int 3 ] in
  (* p = 1 + 2x + 3x^2 ; p' = 2 + 6x ; int_{-1}^{1} p = 2 + 0 + 2 = 4 *)
  Alcotest.(check int) "degree" 2 (Poly1.degree p);
  Alcotest.check rat "eval at 2" (Rat.of_int 17) (Poly1.eval p (Rat.of_int 2));
  Alcotest.check rat "integral" (Rat.of_int 4) (Poly1.integrate_ref p);
  Alcotest.check rat "deriv coeff" (Rat.of_int 6) (Poly1.coeff (Poly1.deriv p) 1)

let qcheck_poly1 =
  [
    QCheck.Test.make ~name:"poly mul distributes over add" ~count:100
      (QCheck.triple arb_poly arb_poly arb_poly) (fun (p, q, r) ->
        Poly1.equal (Poly1.mul p (Poly1.add q r))
          (Poly1.add (Poly1.mul p q) (Poly1.mul p r)));
    QCheck.Test.make ~name:"deriv of antideriv is identity" ~count:100 arb_poly
      (fun p -> Poly1.equal p (Poly1.deriv (Poly1.antideriv p)));
    QCheck.Test.make ~name:"product rule" ~count:100
      (QCheck.pair arb_poly arb_poly) (fun (p, q) ->
        Poly1.equal
          (Poly1.deriv (Poly1.mul p q))
          (Poly1.add (Poly1.mul (Poly1.deriv p) q) (Poly1.mul p (Poly1.deriv q))));
    QCheck.Test.make ~name:"integral additive over interval" ~count:100 arb_poly
      (fun p ->
        let a = Rat.of_int (-1) and m = Rat.zero and b = Rat.one in
        Rat.equal (Poly1.integrate p ~a ~b)
          (Rat.add (Poly1.integrate p ~a ~b:m) (Poly1.integrate p ~a:m ~b)));
  ]

(* --- Mpoly --------------------------------------------------------------- *)

let test_mpoly_basic () =
  let dim = 3 in
  let x = Mpoly.var ~dim 0 and y = Mpoly.var ~dim 1 in
  let p = Mpoly.add (Mpoly.mul x y) (Mpoly.const ~dim 2.0) in
  check_close "eval" 8.0 (Mpoly.eval p [| 2.0; 3.0; 7.0 |]);
  (* int over [-1,1]^3 of (xy + 2) = 16 *)
  check_close "integrate" 16.0 (Mpoly.integrate_ref p);
  let dp = Mpoly.deriv ~i:0 p in
  check_close "deriv" 3.0 (Mpoly.eval dp [| 5.0; 3.0; 0.0 |]);
  let sub = Mpoly.subst_var ~i:1 ~v:4.0 p in
  check_close "subst" 22.0 (Mpoly.eval sub [| 5.0; 99.0; 0.0 |])

let test_mpoly_vs_quadrature () =
  (* Exact monomial integration must agree with Gauss quadrature of
     sufficient order. *)
  let dim = 2 in
  let x = Mpoly.var ~dim 0 and y = Mpoly.var ~dim 1 in
  let p =
    Mpoly.add
      (Mpoly.mul (Mpoly.mul x x) (Mpoly.mul y y))
      (Mpoly.scale 3.0 (Mpoly.mul x y))
  in
  let by_quad = Quadrature.integrate ~dim ~n:4 (fun pt -> Mpoly.eval p pt) in
  check_close "mpoly vs quadrature" (Mpoly.integrate_ref p) by_quad

(* --- Legendre ------------------------------------------------------------ *)

let test_legendre_values () =
  (* P2(x) = (3x^2 - 1)/2 *)
  let p2 = Legendre.legendre 2 in
  Alcotest.check rat "P2(1)" Rat.one (Poly1.eval p2 Rat.one);
  Alcotest.check rat "P2(0)" (Rat.make (-1) 2) (Poly1.eval p2 Rat.zero);
  (* orthonormality: int P~_m P~_n = delta *)
  for m = 0 to 6 do
    for n = 0 to 6 do
      let v =
        Rat.to_float
          (Poly1.integrate_ref (Poly1.mul (Legendre.legendre m) (Legendre.legendre n)))
        *. Legendre.norm_factor m *. Legendre.norm_factor n
      in
      check_close
        (Printf.sprintf "orthonormal (%d,%d)" m n)
        (if m = n then 1.0 else 0.0)
        v
    done
  done

let test_legendre_tables () =
  let tb = Legendre.tables 4 in
  (* edge values: P~_n(+-1) = +-sqrt((2n+1)/2) *)
  for n = 0 to 4 do
    check_close "edge hi" (Legendre.norm_factor n) tb.Legendre.edge_hi.(n);
    check_close "edge lo"
      ((if n land 1 = 0 then 1.0 else -1.0) *. Legendre.norm_factor n)
      tb.Legendre.edge_lo.(n)
  done;
  (* tables vs quadrature for a few entries *)
  let quad f = Quadrature.integrate ~dim:1 ~n:8 (fun pt -> f pt.(0)) in
  let pn n x = Legendre.eval_normalized n x in
  for a = 0 to 3 do
    for b = 0 to 3 do
      check_close "xpair vs quad"
        (quad (fun x -> x *. pn a x *. pn b x))
        tb.Legendre.xpair.(a).(b);
      for c = 0 to 3 do
        check_close "trip vs quad"
          (quad (fun x -> pn a x *. pn b x *. pn c x))
          tb.Legendre.trip.(a).(b).(c)
      done
    done
  done

let test_quadrature_exactness () =
  (* n-point Gauss integrates degree 2n-1 exactly *)
  for n = 1 to 6 do
    let deg = (2 * n) - 1 in
    let exact = if deg land 1 = 1 then 0.0 else 2.0 /. float_of_int (deg + 1) in
    let approx =
      Quadrature.integrate ~dim:1 ~n (fun pt -> pt.(0) ** float_of_int deg)
    in
    check_close ~tol:1e-11 (Printf.sprintf "gauss %d exact to %d" n deg) exact approx
  done;
  (* weights sum to the box volume *)
  let _, w = Quadrature.tensor ~dim:3 ~n:3 in
  check_close "weights sum" 8.0 (Array.fold_left ( +. ) 0.0 w)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest (qcheck_rat_ring @ qcheck_poly1) in
  Alcotest.run "dg_cas"
    [
      ( "rat",
        [
          Alcotest.test_case "basic" `Quick test_rat_basic;
          Alcotest.test_case "overflow" `Quick test_rat_overflow;
        ] );
      ( "poly1",
        [ Alcotest.test_case "basic" `Quick test_poly1_basic ] );
      ( "mpoly",
        [
          Alcotest.test_case "basic" `Quick test_mpoly_basic;
          Alcotest.test_case "vs quadrature" `Quick test_mpoly_vs_quadrature;
        ] );
      ( "legendre",
        [
          Alcotest.test_case "values+orthonormality" `Quick test_legendre_values;
          Alcotest.test_case "tables" `Quick test_legendre_tables;
        ] );
      ( "quadrature",
        [ Alcotest.test_case "exactness" `Quick test_quadrature_exactness ] );
      ("properties", qsuite);
    ]
