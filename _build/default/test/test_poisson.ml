(* Poisson solver tests: manufactured solutions for the periodic (FFT) and
   Dirichlet (tridiagonal) solvers, and the Gauss-law residual metric. *)

module Poisson = Dg_poisson.Poisson

let check_close ?(tol = 1e-8) msg a b =
  if not (Dg_util.Float_cmp.close ~rtol:tol ~atol:tol a b) then
    Alcotest.failf "%s: %.12g <> %.12g" msg a b

(* phi'' = -rho with rho = cos(kx): phi = cos(kx)/k^2, E = sin(kx)/k. *)
let test_periodic_manufactured () =
  let n = 64 in
  let l = 2.0 *. Float.pi in
  let dx = l /. float_of_int n in
  let x i = (float_of_int i +. 0.5) *. dx in
  List.iter
    (fun kmode ->
      let k = float_of_int kmode in
      let rho = Array.init n (fun i -> cos (k *. x i)) in
      let phi, e = Poisson.periodic_1d ~dx rho in
      for i = 0 to n - 1 do
        check_close "phi" (cos (k *. x i) /. (k *. k)) phi.(i);
        check_close "E" (sin (k *. x i) /. k) e.(i)
      done)
    [ 1; 2; 5 ]

let test_periodic_zero_mean () =
  let n = 32 in
  let rho = Array.init n (fun i -> sin (2.0 *. Float.pi *. float_of_int i /. 32.0)) in
  let phi, e = Poisson.periodic_1d ~dx:0.1 rho in
  let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int n in
  check_close ~tol:1e-10 "phi mean" 0.0 (mean phi);
  check_close ~tol:1e-10 "E mean" 0.0 (mean e)

(* Dirichlet: phi'' = -1 on [0,1], phi(0)=phi(1)=0: phi = x(1-x)/2. *)
let test_dirichlet_manufactured () =
  let n = 200 in
  let dx = 1.0 /. float_of_int n in
  let rho = Array.make n 1.0 in
  let phi = Poisson.dirichlet_1d ~dx ~phi_lo:0.0 ~phi_hi:0.0 rho in
  for i = 0 to n - 1 do
    let xi = (float_of_int i +. 0.5) *. dx in
    check_close ~tol:1e-3 "phi" (xi *. (1.0 -. xi) /. 2.0) phi.(i)
  done

let test_dirichlet_bc_values () =
  (* harmonic solution rho = 0: phi linear between the boundary values *)
  let n = 100 in
  let dx = 1.0 /. float_of_int n in
  let phi = Poisson.dirichlet_1d ~dx ~phi_lo:2.0 ~phi_hi:5.0 (Array.make n 0.0) in
  for i = 0 to n - 1 do
    let xi = (float_of_int i +. 0.5) *. dx in
    check_close ~tol:1e-10 "linear" (2.0 +. (3.0 *. xi)) phi.(i)
  done

let test_gauss_residual () =
  let n = 64 in
  let l = 2.0 *. Float.pi in
  let dx = l /. float_of_int n in
  let x i = (float_of_int i +. 0.5) *. dx in
  let rho = Array.init n (fun i -> cos (x i)) in
  let _, e = Poisson.periodic_1d ~dx rho in
  (* consistent E: small residual (second-order central difference) *)
  let r = Poisson.gauss_residual_1d ~dx ~e ~rho in
  if r > 1e-2 then Alcotest.failf "gauss residual too big: %g" r;
  (* inconsistent E: large residual *)
  let bad = Array.map (fun v -> 2.0 *. v) e in
  let rb = Poisson.gauss_residual_1d ~dx ~e:bad ~rho in
  if rb < 0.5 then Alcotest.failf "expected large residual, got %g" rb

let () =
  Alcotest.run "dg_poisson"
    [
      ( "periodic",
        [
          Alcotest.test_case "manufactured" `Quick test_periodic_manufactured;
          Alcotest.test_case "zero mean" `Quick test_periodic_zero_mean;
        ] );
      ( "dirichlet",
        [
          Alcotest.test_case "manufactured" `Quick test_dirichlet_manufactured;
          Alcotest.test_case "boundary values" `Quick test_dirichlet_bc_values;
        ] );
      ("gauss", [ Alcotest.test_case "residual" `Quick test_gauss_residual ]);
    ]
