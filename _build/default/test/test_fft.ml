(* FFT substrate tests: agreement with the naive DFT, inverse identity,
   Parseval, and the delta/constant transforms. *)

module Fft = Dg_fft.Fft

let check_close ?(tol = 1e-10) msg a b =
  if not (Dg_util.Float_cmp.close ~rtol:tol ~atol:tol a b) then
    Alcotest.failf "%s: %.17g <> %.17g" msg a b

let random_signal rng n =
  ( Array.init n (fun _ -> Random.State.float rng 2.0 -. 1.0),
    Array.init n (fun _ -> Random.State.float rng 2.0 -. 1.0) )

let test_vs_naive () =
  let rng = Random.State.make [| 4 |] in
  List.iter
    (fun n ->
      let re, im = random_signal rng n in
      let re', im' = (Array.copy re, Array.copy im) in
      Fft.forward re' im';
      let rn, inn = Fft.dft_naive ~sign:(-1) re im in
      for k = 0 to n - 1 do
        check_close "re" rn.(k) re'.(k);
        check_close "im" inn.(k) im'.(k)
      done)
    [ 1; 2; 4; 8; 16; 64 ]

let test_roundtrip () =
  let rng = Random.State.make [| 8 |] in
  let n = 128 in
  let re, im = random_signal rng n in
  let re', im' = (Array.copy re, Array.copy im) in
  Fft.forward re' im';
  Fft.inverse re' im';
  for k = 0 to n - 1 do
    check_close "roundtrip re" re.(k) re'.(k);
    check_close "roundtrip im" im.(k) im'.(k)
  done

let test_parseval () =
  let rng = Random.State.make [| 12 |] in
  let n = 64 in
  let re, im = random_signal rng n in
  let t_energy =
    Array.fold_left ( +. ) 0.0 (Array.mapi (fun i r -> (r *. r) +. (im.(i) *. im.(i))) re)
  in
  let re', im' = (Array.copy re, Array.copy im) in
  Fft.forward re' im';
  let f_energy =
    Array.fold_left ( +. ) 0.0
      (Array.mapi (fun i r -> (r *. r) +. (im'.(i) *. im'.(i))) re')
  in
  check_close "parseval" t_energy (f_energy /. float_of_int n)

let test_delta_and_constant () =
  let n = 16 in
  (* delta -> all-ones spectrum *)
  let re = Array.make n 0.0 and im = Array.make n 0.0 in
  re.(0) <- 1.0;
  Fft.forward re im;
  Array.iter (fun v -> check_close "delta spectrum" 1.0 v) re;
  (* constant -> spike at k=0 *)
  let re = Array.make n 1.0 and im = Array.make n 0.0 in
  Fft.forward re im;
  check_close "dc bin" (float_of_int n) re.(0);
  for k = 1 to n - 1 do
    check_close "other bins" 0.0 re.(k)
  done

let test_non_pow2_rejected () =
  Alcotest.check_raises "length 6" (Invalid_argument "Fft.transform: length must be 2^k")
    (fun () -> Fft.forward (Array.make 6 0.0) (Array.make 6 0.0))

let qcheck_linearity =
  QCheck.Test.make ~name:"fft is linear" ~count:30 (QCheck.int_range 0 1000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 32 in
      let ar, ai = random_signal rng n and br, bi = random_signal rng n in
      let sr = Array.init n (fun i -> ar.(i) +. (2.0 *. br.(i))) in
      let si = Array.init n (fun i -> ai.(i) +. (2.0 *. bi.(i))) in
      let far, fai = (Array.copy ar, Array.copy ai) in
      let fbr, fbi = (Array.copy br, Array.copy bi) in
      Fft.forward far fai;
      Fft.forward fbr fbi;
      Fft.forward sr si;
      let ok = ref true in
      for k = 0 to n - 1 do
        if
          not
            (Dg_util.Float_cmp.close ~rtol:1e-9 ~atol:1e-9 sr.(k)
               (far.(k) +. (2.0 *. fbr.(k))))
        then ok := false
      done;
      !ok)

let () =
  Alcotest.run "dg_fft"
    [
      ( "fft",
        [
          Alcotest.test_case "vs naive DFT" `Quick test_vs_naive;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "parseval" `Quick test_parseval;
          Alcotest.test_case "delta/constant" `Quick test_delta_and_constant;
          Alcotest.test_case "non-pow2 rejected" `Quick test_non_pow2_rejected;
          QCheck_alcotest.to_alcotest qcheck_linearity;
        ] );
    ]
