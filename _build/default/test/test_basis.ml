(* Tests for the modal basis families and the nodal baseline basis. *)

open Dg_basis
module Mpoly = Dg_cas.Mpoly

let check_close ?(tol = 1e-11) msg a b =
  if not (Dg_util.Float_cmp.close ~rtol:tol ~atol:tol a b) then
    Alcotest.failf "%s: %.17g <> %.17g" msg a b

(* Dimension counts from the paper and from the Arnold–Awanou formula. *)
let test_counts () =
  let count family dim p =
    Modal.num_basis (Modal.make ~family ~dim ~poly_order:p)
  in
  (* Paper checkpoints: 2X3V p=2 Serendipity has 112 DOF; 6D p=1 has 64;
     1X3V p=4 Serendipity has 136 (the nodal scaling configuration). *)
  Alcotest.(check int) "ser d=5 p=2" 112 (count Modal.Serendipity 5 2);
  Alcotest.(check int) "ser d=6 p=1" 64 (count Modal.Serendipity 6 1);
  Alcotest.(check int) "ser d=4 p=4" 136 (count Modal.Serendipity 4 4);
  Alcotest.(check int) "tensor d=3 p=2" 27 (count Modal.Tensor 3 2);
  Alcotest.(check int) "max d=3 p=2" 10 (count Modal.Maximal_order 3 2);
  (* enumeration agrees with closed forms over a sweep *)
  List.iter
    (fun family ->
      for dim = 1 to 5 do
        for p = 0 to 3 do
          Alcotest.(check int)
            (Printf.sprintf "%s d=%d p=%d" (Modal.family_name family) dim p)
            (Modal.count_closed_form ~family ~dim ~poly_order:p)
            (count family dim p)
        done
      done)
    [ Modal.Tensor; Modal.Serendipity; Modal.Maximal_order ]

(* Orthonormality of every family: int w_i w_j over the reference cell is the
   identity, verified with symbolic (exact) integration of the products. *)
let test_orthonormality () =
  List.iter
    (fun (family, dim, p) ->
      let b = Modal.make ~family ~dim ~poly_order:p in
      let np = Modal.num_basis b in
      let polys = Array.init np (Modal.to_mpoly b) in
      for i = 0 to np - 1 do
        for j = i to np - 1 do
          let v = Mpoly.integrate_ref (Mpoly.mul polys.(i) polys.(j)) in
          check_close
            (Printf.sprintf "<w%d,w%d>" i j)
            (if i = j then 1.0 else 0.0)
            v
        done
      done)
    [
      (Modal.Tensor, 2, 2);
      (Modal.Serendipity, 3, 2);
      (Modal.Maximal_order, 3, 3);
      (Modal.Serendipity, 4, 1);
    ]

(* eval / eval_all / to_mpoly are consistent. *)
let test_eval_consistency () =
  let b = Modal.make ~family:Modal.Serendipity ~dim:3 ~poly_order:2 in
  let np = Modal.num_basis b in
  let rng = Random.State.make [| 42 |] in
  let w = Array.make np 0.0 in
  for _ = 1 to 20 do
    let xi = Array.init 3 (fun _ -> Random.State.float rng 2.0 -. 1.0) in
    Modal.eval_all b xi w;
    for k = 0 to np - 1 do
      check_close "eval vs eval_all" (Modal.eval b k xi) w.(k);
      check_close "eval vs mpoly" (Mpoly.eval (Modal.to_mpoly b k) xi) w.(k)
    done
  done

(* Projection of a polynomial already in the space is exact; the constant
   mode carries the cell average. *)
let test_projection () =
  let b = Modal.make ~family:Modal.Tensor ~dim:2 ~poly_order:2 in
  let f pt = 1.0 +. (2.0 *. pt.(0)) +. (0.5 *. pt.(0) *. pt.(1) *. pt.(1)) in
  let coeffs = Modal.project b f in
  let rng = Random.State.make [| 7 |] in
  for _ = 1 to 10 do
    let xi = Array.init 2 (fun _ -> Random.State.float rng 2.0 -. 1.0) in
    check_close "projection reproduces f" (f xi) (Modal.eval_expansion b coeffs xi)
  done;
  (* average of f over [-1,1]^2 = 1 (odd terms vanish, xy^2 term is odd in x) *)
  check_close "cell average" 1.0 (Modal.cell_average b coeffs)

let qcheck_superlinear =
  (* Serendipity is sandwiched: maximal-order <= serendipity <= tensor. *)
  QCheck.Test.make ~name:"family inclusion by count" ~count:50
    (QCheck.pair (QCheck.int_range 1 5) (QCheck.int_range 0 3))
    (fun (dim, p) ->
      let c f = Modal.count_closed_form ~family:f ~dim ~poly_order:p in
      c Modal.Maximal_order <= c Modal.Serendipity
      && c Modal.Serendipity <= c Modal.Tensor)

(* --- nodal basis --------------------------------------------------------- *)

let test_nodal_cardinal () =
  for p = 1 to 4 do
    let b = Nodal_basis.make ~dim:2 ~poly_order:p in
    let nn = Nodal_basis.num_nodes b in
    for k = 0 to nn - 1 do
      for j = 0 to nn - 1 do
        check_close
          (Printf.sprintf "l_%d(x_%d) p=%d" k j p)
          (if k = j then 1.0 else 0.0)
          (Nodal_basis.eval b k b.Nodal_basis.node_coords.(j))
      done
    done
  done

let test_nodal_partition_of_unity () =
  let b = Nodal_basis.make ~dim:3 ~poly_order:2 in
  let rng = Random.State.make [| 3 |] in
  for _ = 1 to 10 do
    let xi = Array.init 3 (fun _ -> Random.State.float rng 2.0 -. 1.0) in
    let s = ref 0.0 in
    for k = 0 to Nodal_basis.num_nodes b - 1 do
      s := !s +. Nodal_basis.eval b k xi
    done;
    check_close "sum of cardinals = 1" 1.0 !s
  done

let test_alias_free_quad_points () =
  Alcotest.(check int) "p=1" 2 (Nodal_basis.alias_free_quad_points ~poly_order:1);
  Alcotest.(check int) "p=2" 4 (Nodal_basis.alias_free_quad_points ~poly_order:2);
  Alcotest.(check int) "p=3" 5 (Nodal_basis.alias_free_quad_points ~poly_order:3)

let () =
  Alcotest.run "dg_basis"
    [
      ( "modal",
        [
          Alcotest.test_case "dimension counts" `Quick test_counts;
          Alcotest.test_case "orthonormality" `Quick test_orthonormality;
          Alcotest.test_case "eval consistency" `Quick test_eval_consistency;
          Alcotest.test_case "projection" `Quick test_projection;
          QCheck_alcotest.to_alcotest qcheck_superlinear;
        ] );
      ( "nodal",
        [
          Alcotest.test_case "cardinal property" `Quick test_nodal_cardinal;
          Alcotest.test_case "partition of unity" `Quick test_nodal_partition_of_unity;
          Alcotest.test_case "alias-free quad points" `Quick test_alias_free_quad_points;
        ] );
    ]
