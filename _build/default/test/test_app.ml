(* Integration tests of the App layer: full Vlasov-Maxwell / Vlasov-Ampere
   cycles with conservation checks — the end-to-end properties the paper
   proves for the semi-discrete scheme (mass exactly; total particle+field
   energy with central fluxes, up to the small RK3 temporal error). *)

module App = Dg_app.Vm_app
module Field = Dg_grid.Field

let maxwellian1 ~vt v = exp (-.(v *. v) /. (2.0 *. vt *. vt)) /. sqrt (2.0 *. Float.pi *. vt *. vt)

let base_spec ~field_model ~flux ~collisions =
  let k = 0.5 in
  let l = 2.0 *. Float.pi /. k in
  let electron =
    App.species ~name:"elc" ~charge:(-1.0) ~mass:1.0 ~collisions
      ~init_f:(fun ~pos ~vel ->
        (1.0 +. (0.05 *. cos (k *. pos.(0)))) *. maxwellian1 ~vt:1.0 vel.(0))
      ()
  in
  {
    (App.default_spec ~cdim:1 ~vdim:1 ~cells:[| 8; 16 |] ~lower:[| 0.0; -6.0 |]
       ~upper:[| l; 6.0 |] ~species:[ electron ])
    with
    App.field_model;
    poly_order = 2;
    vlasov_flux = flux;
    init_em =
      Some
        (fun x ->
          let em = Array.make 8 0.0 in
          em.(0) <- -.(0.05 /. 0.5) *. sin (0.5 *. x.(0));
          em);
  }

let run_and_measure spec ~steps =
  let app = App.create spec in
  let m0 = App.total_mass app 0 in
  let e0 = App.total_energy app in
  for _ = 1 to steps do
    ignore (App.step app)
  done;
  let m1 = App.total_mass app 0 in
  let e1 = App.total_energy app in
  (app, Float.abs ((m1 -. m0) /. m0), Float.abs ((e1 -. e0) /. e0))

let test_vm_conservation_central () =
  let spec =
    base_spec ~field_model:App.Full_maxwell ~flux:Dg_vlasov.Solver.Central
      ~collisions:App.No_collisions
  in
  let _, dm, de = run_and_measure spec ~steps:50 in
  if dm > 1e-12 then Alcotest.failf "mass drift %.3e" dm;
  if de > 1e-7 then Alcotest.failf "energy drift %.3e (central flux)" de

let test_vm_upwind_mass () =
  let spec =
    base_spec ~field_model:App.Full_maxwell ~flux:Dg_vlasov.Solver.Upwind
      ~collisions:App.No_collisions
  in
  let _, dm, de = run_and_measure spec ~steps:50 in
  if dm > 1e-12 then Alcotest.failf "mass drift %.3e" dm;
  (* upwind adds dissipation but should stay small on this smooth problem *)
  if de > 1e-3 then Alcotest.failf "energy drift %.3e too big" de

let test_ampere_conservation () =
  let spec =
    base_spec ~field_model:App.Ampere_only ~flux:Dg_vlasov.Solver.Central
      ~collisions:App.No_collisions
  in
  let _, dm, de = run_and_measure spec ~steps:50 in
  if dm > 1e-12 then Alcotest.failf "mass drift %.3e" dm;
  if de > 1e-7 then Alcotest.failf "energy drift %.3e" de

let test_collisional_app () =
  let spec =
    base_spec ~field_model:App.Ampere_only ~flux:Dg_vlasov.Solver.Upwind
      ~collisions:(App.Lbo_collisions 0.2)
  in
  let app, dm, _ = run_and_measure spec ~steps:10 in
  if dm > 1e-11 then Alcotest.failf "mass drift with LBO: %.3e" dm;
  Alcotest.(check bool) "stepped" true (App.nsteps app = 10)

let test_determinism () =
  let spec =
    base_spec ~field_model:App.Full_maxwell ~flux:Dg_vlasov.Solver.Upwind
      ~collisions:App.No_collisions
  in
  let run () =
    let app = App.create spec in
    for _ = 1 to 5 do
      ignore (App.step app)
    done;
    Array.copy (Field.data (App.distribution app 0))
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "bitwise deterministic" true (a = b)

let test_two_species () =
  (* electron-proton plasma: both species evolve; total charge-weighted
     current enters Ampere's law; mass of each conserved *)
  let k = 0.5 in
  let l = 2.0 *. Float.pi /. k in
  let mk name charge mass vt =
    App.species ~name ~charge ~mass
      ~init_f:(fun ~pos:_ ~vel -> maxwellian1 ~vt vel.(0))
      ()
  in
  let spec =
    {
      (App.default_spec ~cdim:1 ~vdim:1 ~cells:[| 4; 12 |]
         ~lower:[| 0.0; -6.0 |] ~upper:[| l; 6.0 |]
         ~species:[ mk "elc" (-1.0) 1.0 1.0; mk "ion" 1.0 25.0 0.2 ])
      with
      App.field_model = App.Full_maxwell;
      poly_order = 1;
    }
  in
  let app = App.create spec in
  let m_e = App.total_mass app 0 and m_i = App.total_mass app 1 in
  for _ = 1 to 20 do
    ignore (App.step app)
  done;
  let dm_e = Float.abs ((App.total_mass app 0 -. m_e) /. m_e) in
  let dm_i = Float.abs ((App.total_mass app 1 -. m_i) /. m_i) in
  if dm_e > 1e-12 || dm_i > 1e-12 then
    Alcotest.failf "two-species mass drift: %.3e %.3e" dm_e dm_i

let test_suggest_dt_positive () =
  let spec =
    base_spec ~field_model:App.Full_maxwell ~flux:Dg_vlasov.Solver.Upwind
      ~collisions:App.No_collisions
  in
  let app = App.create spec in
  let dt = App.suggest_dt app in
  Alcotest.(check bool) "dt finite positive" true (dt > 0.0 && Float.is_finite dt)

let () =
  Alcotest.run "dg_app"
    [
      ( "conservation",
        [
          Alcotest.test_case "VM central: mass+energy" `Quick test_vm_conservation_central;
          Alcotest.test_case "VM upwind: mass" `Quick test_vm_upwind_mass;
          Alcotest.test_case "Ampere central" `Quick test_ampere_conservation;
          Alcotest.test_case "LBO in the loop" `Quick test_collisional_app;
        ] );
      ( "mechanics",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "two species" `Quick test_two_species;
          Alcotest.test_case "dt suggestion" `Quick test_suggest_dt_positive;
        ] );
    ]
