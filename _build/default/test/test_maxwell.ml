(* Maxwell solver tests: plane-wave propagation accuracy, exact energy
   conservation with central fluxes, dissipation with upwind fluxes. *)

module Modal = Dg_basis.Modal
module Grid = Dg_grid.Grid
module Field = Dg_grid.Field
module Maxwell = Dg_maxwell.Maxwell
module Lindg = Dg_lindg.Lindg
module Stepper = Dg_time.Stepper

let project_em ~basis ~grid ~(f : float array -> float array) (fld : Field.t) =
  let nb = Modal.num_basis basis in
  let phys = Array.make (Grid.ndim grid) 0.0 in
  let block = Array.make (8 * nb) 0.0 in
  Grid.iter_cells grid (fun _ c ->
      for comp = 0 to 7 do
        let coeffs =
          Modal.project basis (fun xi ->
              Grid.to_physical grid c xi phys;
              (f phys).(comp))
        in
        Array.blit coeffs 0 block (comp * nb) nb
      done;
      Field.write_block fld c block)

(* Plane EM wave in 1D: Ey = cos(k(x - t)), Bz = cos(k(x - t)), exact
   solution of Maxwell in vacuum (c = 1). *)
let run_wave ~cells ~p ~flux ~tend =
  let grid = Grid.make ~cells:[| cells |] ~lower:[| 0.0 |] ~upper:[| 2.0 *. Float.pi |] in
  let basis = Modal.make ~family:Modal.Serendipity ~dim:1 ~poly_order:p in
  let mx = Maxwell.create ~flux ~chi:0.0 ~gamma:0.0 ~basis ~grid () in
  let nb = Modal.num_basis basis in
  let k = 1.0 in
  let init x =
    let e = Array.make 8 0.0 in
    e.(Maxwell.ey) <- cos (k *. x.(0));
    e.(Maxwell.bz) <- cos (k *. x.(0));
    e
  in
  let em = Field.create grid ~ncomp:(8 * nb) in
  project_em ~basis ~grid ~f:init em;
  let bcs = [| (Field.Periodic, Field.Periodic) |] in
  let rhs ~time:_ state outs =
    match (state, outs) with
    | [ u ], [ o ] ->
        Field.sync_ghosts u bcs;
        Maxwell.rhs mx ~em:u ~out:o
    | _ -> assert false
  in
  let stepper = Stepper.create ~scheme:Stepper.Ssp_rk3 ~like:[ em ] in
  let dt = 0.3 *. (Grid.dx grid).(0) /. float_of_int ((2 * p) + 1) in
  let nsteps = int_of_float (Float.ceil (tend /. dt)) in
  let dt = tend /. float_of_int nsteps in
  let e0 = Maxwell.field_energy mx ~em in
  for i = 0 to nsteps - 1 do
    Stepper.step stepper ~rhs ~time:(float_of_int i *. dt) ~dt [ em ]
  done;
  let e1 = Maxwell.field_energy mx ~em in
  (* L2 error of Ey against the advected wave *)
  let err = ref 0.0 in
  let phys = Array.make 1 0.0 in
  let pts, wts = Dg_cas.Quadrature.tensor ~dim:1 ~n:(p + 2) in
  let jac = (Grid.dx grid).(0) /. 2.0 in
  let block = Array.make (8 * nb) 0.0 in
  let ey_coeffs = Array.make nb 0.0 in
  Grid.iter_cells grid (fun _ c ->
      Field.read_block em c block;
      Array.blit block (Maxwell.ey * nb) ey_coeffs 0 nb;
      Array.iteri
        (fun q pt ->
          Grid.to_physical grid c pt phys;
          let d =
            Modal.eval_expansion basis ey_coeffs pt
            -. cos (k *. (phys.(0) -. tend))
          in
          err := !err +. (wts.(q) *. d *. d *. jac))
        pts);
  (sqrt !err, e0, e1)

let test_wave_convergence () =
  List.iter
    (fun p ->
      let e1, _, _ = run_wave ~cells:8 ~p ~flux:Lindg.Upwind ~tend:1.0 in
      let e2, _, _ = run_wave ~cells:16 ~p ~flux:Lindg.Upwind ~tend:1.0 in
      let order = log (e1 /. e2) /. log 2.0 in
      if order < float_of_int p +. 0.5 then
        Alcotest.failf "p=%d: order %.2f too low (%.3e -> %.3e)" p order e1 e2)
    [ 1; 2 ]

(* The exact semi-discrete statement: with central fluxes,
   dE/dt = <u, rhs(u)> = 0 to machine precision for arbitrary states. *)
let semi_discrete_energy_rate ~flux ~dims =
  let grid =
    Grid.make
      ~cells:(Array.make dims 4)
      ~lower:(Array.make dims 0.0)
      ~upper:(Array.make dims (2.0 *. Float.pi))
  in
  let basis = Modal.make ~family:Modal.Serendipity ~dim:dims ~poly_order:2 in
  let mx = Maxwell.create ~flux ~chi:0.0 ~gamma:0.0 ~basis ~grid () in
  let nb = Modal.num_basis basis in
  let rng = Random.State.make [| 19 |] in
  let em = Field.create grid ~ncomp:(8 * nb) in
  Grid.iter_cells grid (fun _ c ->
      for k = 0 to (6 * nb) - 1 do
        Field.set em c k (Random.State.float rng 2.0 -. 1.0)
      done);
  Field.sync_ghosts em (Array.make dims (Field.Periodic, Field.Periodic));
  let out = Field.create grid ~ncomp:(8 * nb) in
  Maxwell.rhs mx ~em ~out;
  (* dE/dt = sum over E,B components of <u, du/dt> *)
  let acc = ref 0.0 in
  Grid.iter_cells grid (fun _ c ->
      let ub = Dg_grid.Field.offset em c and ob = Dg_grid.Field.offset out c in
      for k = 0 to (6 * nb) - 1 do
        acc := !acc +. ((Field.data em).(ub + k) *. (Field.data out).(ob + k))
      done);
  !acc

let test_energy_conservation_central () =
  List.iter
    (fun dims ->
      let rate = semi_discrete_energy_rate ~flux:Lindg.Central ~dims in
      if Float.abs rate > 1e-10 then
        Alcotest.failf "central d(energy)/dt <> 0 in %dD: %.3e" dims rate)
    [ 1; 2 ];
  (* and the fully-discrete drift is only the small RK3 temporal error *)
  let _, e0, e1 = run_wave ~cells:12 ~p:2 ~flux:Lindg.Central ~tend:2.0 in
  if Float.abs (e1 -. e0) /. e0 > 1e-5 then
    Alcotest.failf "central-flux energy drift: %.10e -> %.10e" e0 e1

let test_energy_decay_upwind () =
  let _, e0, e1 = run_wave ~cells:6 ~p:1 ~flux:Lindg.Upwind ~tend:2.0 in
  if e1 > e0 +. 1e-12 then Alcotest.failf "upwind energy grew: %.6e -> %.6e" e0 e1;
  if e1 >= e0 -. 1e-10 *. e0 then
    Alcotest.failf "upwind should dissipate on a coarse grid: %.6e -> %.6e" e0 e1

(* Flux matrices: in 1D, eigenvalues of A_x must be {0, +-1} (c = 1) times
   cleaning speeds; check A_x applied to the wave eigenvector. *)
let test_flux_matrix_wave_eigenvector () =
  let a = Maxwell.flux_matrix ~chi:0.0 ~gamma:0.0 0 in
  (* (Ey, Bz) = (1, 1) propagates right with speed 1: A (0,1,0,0,0,1,0,0)
     = (0,1,0,0,0,1,0,0) *)
  let u = Array.make 8 0.0 in
  u.(Maxwell.ey) <- 1.0;
  u.(Maxwell.bz) <- 1.0;
  let v = Array.make 8 0.0 in
  Dg_linalg.Mat.matvec a u v;
  Array.iteri
    (fun i vi ->
      if not (Dg_util.Float_cmp.close vi u.(i)) then
        Alcotest.failf "eigenvector component %d: %g <> %g" i vi u.(i))
    v

(* 2D TM mode: standing wave frequencies; quick smoke of multi-D assembly
   via energy conservation. *)
let test_2d_energy () =
  let grid =
    Grid.make ~cells:[| 6; 6 |] ~lower:[| 0.0; 0.0 |]
      ~upper:[| 2.0 *. Float.pi; 2.0 *. Float.pi |]
  in
  let basis = Modal.make ~family:Modal.Serendipity ~dim:2 ~poly_order:1 in
  let mx = Maxwell.create ~flux:Lindg.Central ~chi:0.0 ~gamma:0.0 ~basis ~grid () in
  let nb = Modal.num_basis basis in
  let em = Field.create grid ~ncomp:(8 * nb) in
  project_em ~basis ~grid
    ~f:(fun x ->
      let e = Array.make 8 0.0 in
      e.(Maxwell.ez) <- sin x.(0) *. sin x.(1);
      e)
    em;
  let bcs = Array.make 2 (Field.Periodic, Field.Periodic) in
  let rhs ~time:_ state outs =
    match (state, outs) with
    | [ u ], [ o ] ->
        Field.sync_ghosts u bcs;
        Maxwell.rhs mx ~em:u ~out:o
    | _ -> assert false
  in
  let stepper = Stepper.create ~scheme:Stepper.Ssp_rk3 ~like:[ em ] in
  let e0 = Maxwell.field_energy mx ~em in
  let dt = 0.01 in
  for i = 0 to 99 do
    Stepper.step stepper ~rhs ~time:(float_of_int i *. dt) ~dt [ em ]
  done;
  let e1 = Maxwell.field_energy mx ~em in
  if Float.abs (e1 -. e0) /. e0 > 1e-5 then
    Alcotest.failf "2D central-flux energy drift: %.10e -> %.10e" e0 e1

let () =
  Alcotest.run "dg_maxwell"
    [
      ( "waves",
        [
          Alcotest.test_case "plane-wave convergence" `Slow test_wave_convergence;
          Alcotest.test_case "flux-matrix eigenvector" `Quick
            test_flux_matrix_wave_eigenvector;
        ] );
      ( "energy",
        [
          Alcotest.test_case "central conserves" `Quick test_energy_conservation_central;
          Alcotest.test_case "upwind dissipates" `Quick test_energy_decay_upwind;
          Alcotest.test_case "2D central conserves" `Quick test_2d_energy;
        ] );
    ]
