(* I/O tests: checkpoint round-trip, slice evaluation, CSV output. *)

module Grid = Dg_grid.Grid
module Field = Dg_grid.Field
module Modal = Dg_basis.Modal
module Snapshot = Dg_io.Snapshot
module Slices = Dg_io.Slices

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let test_snapshot_roundtrip () =
  let grid = Grid.make ~cells:[| 3; 4 |] ~lower:[| 0.; -2. |] ~upper:[| 1.; 2. |] in
  let f = Field.create grid ~ncomp:5 in
  let rng = Random.State.make [| 41 |] in
  Grid.iter_cells grid (fun _ c ->
      for k = 0 to 4 do
        Field.set f c k (Random.State.float rng 2.0 -. 1.0)
      done);
  let path = tmp "dgtest_snapshot.bin" in
  Snapshot.write_field path f;
  let g = Snapshot.read_field path in
  Sys.remove path;
  Alcotest.(check int) "ncomp" (Field.ncomp f) (Field.ncomp g);
  Alcotest.(check bool) "grids equal" true (Grid.cells (Field.grid g) = Grid.cells grid);
  Grid.iter_cells grid (fun _ c ->
      for k = 0 to 4 do
        Alcotest.(check (float 0.0)) "value" (Field.get f c k) (Field.get g c k)
      done)

let test_snapshot_bad_magic () =
  let path = tmp "dgtest_bad.bin" in
  let oc = open_out_bin path in
  output_binary_int oc 0xdeadbeef;
  close_out oc;
  (try
     ignore (Snapshot.read_field path);
     Alcotest.fail "expected failure"
   with Failure _ -> ());
  Sys.remove path

(* eval_at must reproduce the projected polynomial anywhere in the domain. *)
let test_eval_at () =
  let grid = Grid.make ~cells:[| 4; 4 |] ~lower:[| 0.; 0. |] ~upper:[| 2.; 2. |] in
  let basis = Modal.make ~family:Modal.Tensor ~dim:2 ~poly_order:2 in
  let nb = Modal.num_basis basis in
  let f = Field.create grid ~ncomp:nb in
  let fn x y = 1.0 +. (x *. y) +. (0.5 *. x *. x) in
  let phys = Array.make 2 0.0 in
  Grid.iter_cells grid (fun _ c ->
      let coeffs =
        Modal.project basis (fun xi ->
            Grid.to_physical grid c xi phys;
            fn phys.(0) phys.(1))
      in
      Field.write_block f c coeffs);
  let rng = Random.State.make [| 5 |] in
  for _ = 1 to 30 do
    let x = Random.State.float rng 2.0 and y = Random.State.float rng 2.0 in
    let v = Slices.eval_at basis f [| x; y |] in
    if not (Dg_util.Float_cmp.close ~rtol:1e-10 ~atol:1e-10 v (fn x y)) then
      Alcotest.failf "eval_at (%g,%g): %g <> %g" x y v (fn x y)
  done

let test_slice_csv () =
  let grid = Grid.make ~cells:[| 2; 2 |] ~lower:[| 0.; 0. |] ~upper:[| 1.; 1. |] in
  let basis = Modal.make ~family:Modal.Tensor ~dim:2 ~poly_order:1 in
  let f = Field.create grid ~ncomp:(Modal.num_basis basis) in
  Grid.iter_cells grid (fun _ c ->
      Field.set f c 0 2.0 (* constant = 2/sqrt(2)^2 = 1 pointwise *));
  let path = tmp "dgtest_slice.csv" in
  Slices.write_slice_2d ~basis ~fld:f ~dim_x:0 ~dim_y:1 ~at:[| 0.0; 0.0 |] ~nx:4
    ~ny:4 path;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  (* header comment + column header + 16 data rows *)
  Alcotest.(check int) "line count" 18 (List.length !lines);
  let last = List.hd !lines in
  (match String.split_on_char ',' last with
  | [ _; _; v ] ->
      Alcotest.(check (float 1e-10)) "constant value" 1.0 (float_of_string v)
  | _ -> Alcotest.fail "bad csv row")

let () =
  Alcotest.run "dg_io"
    [
      ( "snapshot",
        [
          Alcotest.test_case "roundtrip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "bad magic" `Quick test_snapshot_bad_magic;
        ] );
      ( "slices",
        [
          Alcotest.test_case "eval_at" `Quick test_eval_at;
          Alcotest.test_case "csv slice" `Quick test_slice_csv;
        ] );
    ]
