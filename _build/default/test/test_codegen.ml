(* The generated unrolled kernels must agree with the interpreted sparse
   tensors exactly (same entries, different execution strategy), and the
   emitted source must be well-formed and literal-stable. *)

module Layout = Dg_kernels.Layout
module Modal = Dg_basis.Modal
module Grid = Dg_grid.Grid
module Tensors = Dg_kernels.Tensors
module Sparse = Dg_kernels.Sparse
module Flux = Dg_kernels.Flux
module Codegen = Dg_codegen.Codegen
module Gen = Dg_genkernels.Kernels

let layout ~cdim ~vdim ~family ~p =
  let pdim = cdim + vdim in
  Layout.make ~cdim ~vdim ~family ~poly_order:p
    ~grid:
      (Grid.make ~cells:(Array.make pdim 2)
         ~lower:(Array.make pdim (-1.0))
         ~upper:(Array.make pdim 1.0))

let check_arrays msg a b =
  Array.iteri
    (fun i v ->
      if not (Dg_util.Float_cmp.close ~rtol:1e-13 ~atol:1e-13 v b.(i)) then
        Alcotest.failf "%s [%d]: %.17g <> %.17g" msg i v b.(i))
    a

(* Generated streaming kernel vs interpreted tensor with the streaming
   flux expansion. *)
let check_streaming ~cdim ~vdim ~family ~p
    (gen : wv:float -> dv:float -> rdx2:float -> float array -> float array -> unit) =
  let lay = layout ~cdim ~vdim ~family ~p in
  let np = Layout.num_basis lay in
  let support = Tensors.streaming_support lay ~dir:0 in
  let vol = Tensors.volume lay.Layout.basis ~support ~dir:0 in
  let rng = Random.State.make [| 17 |] in
  for _ = 1 to 10 do
    let f = Array.init np (fun _ -> Random.State.float rng 2.0 -. 1.0) in
    let wv = Random.State.float rng 4.0 -. 2.0 in
    let dv = 0.1 +. Random.State.float rng 1.0 in
    let rdx2 = 2.0 /. (0.1 +. Random.State.float rng 1.0) in
    let alpha = Array.make np 0.0 in
    Flux.streaming_alpha lay ~dir:0 ~vcenter:wv ~dv ~support alpha;
    let out_ref = Array.make np 0.0 and out_gen = Array.make np 0.0 in
    Sparse.apply_t3 vol ~scale:rdx2 alpha f out_ref;
    gen ~wv ~dv ~rdx2 f out_gen;
    check_arrays "streaming kernel" out_gen out_ref
  done

let check_accel ~cdim ~vdim ~family ~p
    (gen : scale:float -> float array -> float array -> float array -> unit) =
  let lay = layout ~cdim ~vdim ~family ~p in
  let np = Layout.num_basis lay in
  let dir = cdim in
  let support = Tensors.acceleration_support lay ~vdir:dir in
  let vol = Tensors.volume lay.Layout.basis ~support ~dir in
  let rng = Random.State.make [| 23 |] in
  for _ = 1 to 10 do
    let f = Array.init np (fun _ -> Random.State.float rng 2.0 -. 1.0) in
    let alpha = Array.init np (fun _ -> Random.State.float rng 2.0 -. 1.0) in
    let scale = Random.State.float rng 3.0 in
    let out_ref = Array.make np 0.0 and out_gen = Array.make np 0.0 in
    Sparse.apply_t3 vol ~scale alpha f out_ref;
    gen ~scale alpha f out_gen;
    check_arrays "accel kernel" out_gen out_ref
  done

let test_generated_streaming () =
  check_streaming ~cdim:1 ~vdim:1 ~family:Modal.Tensor ~p:1 Gen.vol_stream_1x1v_p1_tensor;
  check_streaming ~cdim:1 ~vdim:1 ~family:Modal.Tensor ~p:2 Gen.vol_stream_1x1v_p2_tensor;
  check_streaming ~cdim:1 ~vdim:2 ~family:Modal.Tensor ~p:1 Gen.vol_stream_1x2v_p1_tensor;
  check_streaming ~cdim:1 ~vdim:2 ~family:Modal.Serendipity ~p:2 Gen.vol_stream_1x2v_p2_ser

let test_generated_accel () =
  check_accel ~cdim:1 ~vdim:1 ~family:Modal.Tensor ~p:1 Gen.vol_accel_1x1v_p1_tensor;
  check_accel ~cdim:1 ~vdim:1 ~family:Modal.Tensor ~p:2 Gen.vol_accel_1x1v_p2_tensor;
  check_accel ~cdim:1 ~vdim:2 ~family:Modal.Tensor ~p:1 Gen.vol_accel_1x2v_p1_tensor;
  check_accel ~cdim:1 ~vdim:2 ~family:Modal.Serendipity ~p:2 Gen.vol_accel_1x2v_p2_ser

(* Fig. 1 claim shape: the unrolled modal 1X2V p=1 volume kernel needs far
   fewer multiplications than the alias-free nodal quadrature update. *)
let test_mult_counts () =
  let lay = layout ~cdim:1 ~vdim:2 ~family:Modal.Tensor ~p:1 in
  let _, m_stream = Codegen.emit_streaming_volume lay ~dir:0 ~name:"k" in
  let accel_mults vdir =
    let support = Tensors.acceleration_support lay ~vdir in
    Codegen.mult_count_t3 (Tensors.volume lay.Layout.basis ~support ~dir:vdir)
  in
  let total = m_stream + accel_mults 1 + accel_mults 2 in
  let nodal = Codegen.nodal_mult_estimate lay in
  if not (total < nodal / 2) then
    Alcotest.failf "modal volume mults %d not << nodal estimate %d" total nodal;
  if total > 150 then
    Alcotest.failf "modal volume mults %d larger than expected O(100)" total

(* Emitted source is syntactically plausible: balanced parens, float
   literals only. *)
let test_source_sanity () =
  let lay = layout ~cdim:1 ~vdim:2 ~family:Modal.Tensor ~p:1 in
  let src, _ = Codegen.emit_streaming_volume lay ~dir:0 ~name:"k" in
  let depth = ref 0 in
  String.iter
    (fun c ->
      if c = '(' then incr depth else if c = ')' then decr depth;
      if !depth < 0 then Alcotest.fail "unbalanced parens")
    src;
  Alcotest.(check int) "balanced" 0 !depth;
  (* every numeric literal must parse as a float *)
  Alcotest.(check bool) "has header" true
    (String.length src > 0 && String.get src 0 = '(')

let () =
  Alcotest.run "dg_codegen"
    [
      ( "generated",
        [
          Alcotest.test_case "streaming kernels match tensors" `Quick
            test_generated_streaming;
          Alcotest.test_case "acceleration kernels match tensors" `Quick
            test_generated_accel;
          Alcotest.test_case "multiplication counts (Fig. 1)" `Quick test_mult_counts;
          Alcotest.test_case "source sanity" `Quick test_source_sanity;
        ] );
    ]
